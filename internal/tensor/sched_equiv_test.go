package tensor

import (
	"math/rand"
	"testing"
)

// testMat returns a deterministic pseudo-random r×c leaf matrix. Leaves
// use New (never Get) so the harness's arena-balance check stays exact.
func testMat(r, c int, seed int64) *Matrix {
	m := New(r, c)
	rng := rand.New(rand.NewSource(seed))
	for i := range m.Data {
		m.Data[i] = rng.NormFloat64()
	}
	return m
}

// testMatPos is testMat shifted into strictly positive territory (Log,
// probability-like inputs).
func testMatPos(r, c int, seed int64) *Matrix {
	m := testMat(r, c, seed)
	for i, v := range m.Data {
		if v < 0 {
			v = -v
		}
		m.Data[i] = v + 0.1
	}
	return m
}

func testCSR() *CSR {
	ri := []int{0, 0, 1, 2, 3, 3}
	ci := []int{0, 2, 1, 0, 1, 2}
	val := []float64{1, 0.5, 2, -1, 0.25, 3}
	return NewCSR(4, 3, ri, ci, val)
}

// TestSchedEquivAllOps drives every tape op kind (and the aliasing/reuse
// patterns from matrix_test.go) through the differential harness with the
// full schedule (lifetime + fusion + rematerialization) against the plain
// record-order executor.
func TestSchedEquivAllOps(t *testing.T) {
	cases := []struct {
		name  string
		build func(tp *Tape) SchedProbe
	}{
		{"Add", func(tp *Tape) SchedProbe {
			a, b := tp.Var(testMat(3, 4, 1)), tp.Var(testMat(3, 4, 2))
			o := tp.Add(a, b)
			return SchedProbe{Loss: tp.SumAll(o), Outputs: []*Node{o}, Leaves: []*Node{a, b}}
		}},
		{"Sub", func(tp *Tape) SchedProbe {
			a, b := tp.Var(testMat(3, 4, 3)), tp.Var(testMat(3, 4, 4))
			o := tp.Sub(a, b)
			return SchedProbe{Loss: tp.SumAll(o), Outputs: []*Node{o}, Leaves: []*Node{a, b}}
		}},
		{"Mul", func(tp *Tape) SchedProbe {
			a, b := tp.Var(testMat(3, 4, 5)), tp.Var(testMat(3, 4, 6))
			o := tp.Mul(a, b)
			return SchedProbe{Loss: tp.SumAll(o), Outputs: []*Node{o}, Leaves: []*Node{a, b}}
		}},
		{"Scale", func(tp *Tape) SchedProbe {
			a := tp.Var(testMat(3, 4, 7))
			o := tp.Scale(a, -1.7)
			return SchedProbe{Loss: tp.SumAll(o), Outputs: []*Node{o}, Leaves: []*Node{a}}
		}},
		{"AddScalar", func(tp *Tape) SchedProbe {
			a := tp.Var(testMat(3, 4, 8))
			o := tp.AddScalar(a, 0.37)
			return SchedProbe{Loss: tp.SumAll(o), Outputs: []*Node{o}, Leaves: []*Node{a}}
		}},
		{"AddRowVec", func(tp *Tape) SchedProbe {
			a, b := tp.Var(testMat(3, 4, 9)), tp.Var(testMat(1, 4, 10))
			o := tp.AddRowVec(a, b)
			return SchedProbe{Loss: tp.SumAll(o), Outputs: []*Node{o}, Leaves: []*Node{a, b}}
		}},
		{"MulColVec", func(tp *Tape) SchedProbe {
			a, b := tp.Var(testMat(3, 4, 11)), tp.Var(testMat(3, 1, 12))
			o := tp.MulColVec(a, b)
			return SchedProbe{Loss: tp.SumAll(o), Outputs: []*Node{o}, Leaves: []*Node{a, b}}
		}},
		{"MatMul", func(tp *Tape) SchedProbe {
			a, b := tp.Var(testMat(3, 4, 13)), tp.Var(testMat(4, 2, 14))
			o := tp.MatMul(a, b)
			return SchedProbe{Loss: tp.SumAll(o), Outputs: []*Node{o}, Leaves: []*Node{a, b}}
		}},
		{"SpMM", func(tp *Tape) SchedProbe {
			a := tp.Var(testMat(3, 2, 15))
			o := tp.SpMM(testCSR(), a)
			return SchedProbe{Loss: tp.SumAll(o), Outputs: []*Node{o}, Leaves: []*Node{a}}
		}},
		{"Affine/ident", affineCase(ActIdent)},
		{"Affine/relu", affineCase(ActReLU)},
		{"Affine/leaky", affineCase(ActLeakyReLU)},
		{"Affine/tanh", affineCase(ActTanh)},
		{"Affine/sigmoid", affineCase(ActSigmoid)},
		{"Affine2/ident", affine2Case(ActIdent)},
		{"Affine2/sigmoid", affine2Case(ActSigmoid)},
		{"Affine2/tanh", affine2Case(ActTanh)},
		{"Lerp", func(tp *Tape) SchedProbe {
			a, b := tp.Var(testMat(3, 4, 20)), tp.Var(testMat(3, 4, 21))
			z := tp.Sigmoid(tp.Var(testMat(3, 4, 22)))
			o := tp.Lerp(a, b, z)
			return SchedProbe{Loss: tp.SumAll(o), Outputs: []*Node{o}, Leaves: []*Node{a, b}}
		}},
		{"Sigmoid", unaryCase(func(tp *Tape, a *Node) *Node { return tp.Sigmoid(a) })},
		{"Tanh", unaryCase(func(tp *Tape, a *Node) *Node { return tp.Tanh(a) })},
		{"ReLU", unaryCase(func(tp *Tape, a *Node) *Node { return tp.ReLU(a) })},
		{"LeakyReLU", unaryCase(func(tp *Tape, a *Node) *Node { return tp.LeakyReLU(a, 0.2) })},
		{"Exp", unaryCase(func(tp *Tape, a *Node) *Node { return tp.Exp(a) })},
		{"Sin", unaryCase(func(tp *Tape, a *Node) *Node { return tp.Sin(a) })},
		{"Log", func(tp *Tape) SchedProbe {
			a := tp.Var(testMatPos(3, 4, 23))
			o := tp.Log(a)
			return SchedProbe{Loss: tp.SumAll(o), Outputs: []*Node{o}, Leaves: []*Node{a}}
		}},
		{"SoftmaxRows", func(tp *Tape) SchedProbe {
			a := tp.Var(testMat(3, 5, 24))
			o := tp.SoftmaxRows(a)
			w := tp.Var(testMat(3, 5, 25)) // break softmax's grad symmetry
			return SchedProbe{Loss: tp.SumAll(tp.Mul(o, w)), Outputs: []*Node{o}, Leaves: []*Node{a, w}}
		}},
		{"ConcatCols", func(tp *Tape) SchedProbe {
			a, b, c := tp.Var(testMat(3, 2, 26)), tp.Var(testMat(3, 3, 27)), tp.Var(testMat(3, 1, 28))
			o := tp.ConcatCols(a, b, c)
			return SchedProbe{Loss: tp.SumAll(tp.Mul(o, o)), Outputs: []*Node{o}, Leaves: []*Node{a, b, c}}
		}},
		{"SliceCols", func(tp *Tape) SchedProbe {
			a := tp.Var(testMat(3, 6, 29))
			o := tp.SliceCols(a, 1, 4)
			return SchedProbe{Loss: tp.SumAll(tp.Mul(o, o)), Outputs: []*Node{o}, Leaves: []*Node{a}}
		}},
		{"GatherRows/repeated", func(tp *Tape) SchedProbe {
			a := tp.Var(testMat(4, 3, 30))
			o := tp.GatherRows(a, []int{2, 0, 2, 3, 0}) // repeated rows accumulate
			return SchedProbe{Loss: tp.SumAll(tp.Mul(o, o)), Outputs: []*Node{o}, Leaves: []*Node{a}}
		}},
		{"ScatterAddRows/colliding", func(tp *Tape) SchedProbe {
			a := tp.Var(testMat(5, 3, 31))
			o := tp.ScatterAddRows(a, []int{1, 0, 1, 2, 0}, 4) // colliding targets
			return SchedProbe{Loss: tp.SumAll(tp.Mul(o, o)), Outputs: []*Node{o}, Leaves: []*Node{a}}
		}},
		{"SegmentSoftmax", func(tp *Tape) SchedProbe {
			a := tp.Var(testMat(6, 1, 32))
			o := tp.SegmentSoftmax(a, []int{0, 0, 1, 1, 1, 2}, 3)
			w := tp.Var(testMat(6, 1, 33))
			return SchedProbe{Loss: tp.SumAll(tp.Mul(o, w)), Outputs: []*Node{o}, Leaves: []*Node{a, w}}
		}},
		{"SumAll", unaryCase(func(tp *Tape, a *Node) *Node { return tp.SumAll(a) })},
		{"MeanAll", unaryCase(func(tp *Tape, a *Node) *Node { return tp.MeanAll(a) })},
		{"SumRows", unaryCase(func(tp *Tape, a *Node) *Node { return tp.SumRows(a) })},
		{"BCEWithLogits", func(tp *Tape) SchedProbe {
			a := tp.Var(testMat(4, 3, 34))
			o := tp.BCEWithLogits(a, testMatPos(4, 3, 35))
			return SchedProbe{Loss: o, Outputs: []*Node{o}, Leaves: []*Node{a}}
		}},
		{"BCEProb", func(tp *Tape) SchedProbe {
			a := tp.Var(testMat(4, 3, 36))
			p := tp.Sigmoid(a)
			o := tp.BCEProb(p, testMatPos(4, 3, 37))
			return SchedProbe{Loss: o, Outputs: []*Node{o}, Leaves: []*Node{a}}
		}},
		{"SCELoss", func(tp *Tape) SchedProbe {
			a := tp.Var(testMat(4, 3, 38))
			o := tp.SCELoss(a, testMat(4, 3, 39), 2)
			return SchedProbe{Loss: o, Outputs: []*Node{o}, Leaves: []*Node{a}}
		}},
		{"MSELoss", func(tp *Tape) SchedProbe {
			a := tp.Var(testMat(4, 3, 40))
			o := tp.MSELoss(a, testMat(4, 3, 41))
			return SchedProbe{Loss: o, Outputs: []*Node{o}, Leaves: []*Node{a}}
		}},
		{"GaussianKL", func(tp *Tape) SchedProbe {
			mq, sq := tp.Var(testMat(4, 2, 42)), tp.Var(testMat(4, 2, 43))
			mp, sp := tp.Var(testMat(4, 2, 44)), tp.Var(testMat(4, 2, 45))
			o := tp.GaussianKL(mq, sq, mp, sp)
			return SchedProbe{Loss: o, Outputs: []*Node{o}, Leaves: []*Node{mq, sq, mp, sp}}
		}},

		// Fusion candidates: elementwise consumers over fusable producers.
		{"fuse/sigmoid-after-affine", func(tp *Tape) SchedProbe {
			x, w, b := tp.Var(testMat(3, 4, 50)), tp.Var(testMat(4, 2, 51)), tp.Var(testMat(1, 2, 52))
			o := tp.Sigmoid(tp.Affine(x, w, b, ActIdent))
			return SchedProbe{Loss: tp.SumAll(o), Outputs: []*Node{o}, Leaves: []*Node{x, w, b}}
		}},
		{"fuse/tanh-after-matmul", func(tp *Tape) SchedProbe {
			a, b := tp.Var(testMat(3, 4, 53)), tp.Var(testMat(4, 2, 54))
			o := tp.Tanh(tp.MatMul(a, b))
			return SchedProbe{Loss: tp.SumAll(o), Outputs: []*Node{o}, Leaves: []*Node{a, b}}
		}},
		{"fuse/relu-after-spmm", func(tp *Tape) SchedProbe {
			a := tp.Var(testMat(3, 2, 55))
			o := tp.ReLU(tp.SpMM(testCSR(), a))
			return SchedProbe{Loss: tp.SumAll(o), Outputs: []*Node{o}, Leaves: []*Node{a}}
		}},
		{"fuse/leaky-after-affine2", func(tp *Tape) SchedProbe {
			x, wx := tp.Var(testMat(3, 4, 56)), tp.Var(testMat(4, 2, 57))
			h, wh := tp.Var(testMat(3, 5, 58)), tp.Var(testMat(5, 2, 59))
			b := tp.Var(testMat(1, 2, 60))
			o := tp.LeakyReLU(tp.Affine2(x, wx, h, wh, b, ActIdent), 0.2)
			return SchedProbe{Loss: tp.SumAll(o), Outputs: []*Node{o}, Leaves: []*Node{x, wx, h, wh, b}}
		}},
		{"fuse/scale-chain", func(tp *Tape) SchedProbe {
			a := tp.Var(testMat(3, 4, 61))
			o := tp.Scale(tp.AddScalar(tp.Scale(a, 0.5), -1.25), 3)
			return SchedProbe{Loss: tp.SumAll(o), Outputs: []*Node{o}, Leaves: []*Node{a}}
		}},
		{"fuse/sigmoid-after-scale", func(tp *Tape) SchedProbe {
			a := tp.Var(testMat(3, 4, 62))
			o := tp.Sigmoid(tp.Scale(a, 1.5))
			return SchedProbe{Loss: tp.SumAll(o), Outputs: []*Node{o}, Leaves: []*Node{a}}
		}},
		{"fuse/blocked-two-consumers", func(tp *Tape) SchedProbe {
			x, w, b := tp.Var(testMat(3, 4, 63)), tp.Var(testMat(4, 2, 64)), tp.Var(testMat(1, 2, 65))
			pre := tp.Affine(x, w, b, ActIdent) // two consumers: fusion must stay off
			o := tp.Add(tp.Sigmoid(pre), tp.Tanh(pre))
			return SchedProbe{Loss: tp.SumAll(o), Outputs: []*Node{o}, Leaves: []*Node{x, w, b}}
		}},
		{"fuse/activation-is-loss", func(tp *Tape) SchedProbe {
			// The producer chain ends in the loss itself: the seeded-grad
			// gate must keep the bookkeeping straight.
			a := tp.Var(testMat(1, 1, 66))
			o := tp.Tanh(tp.Scale(a, 0.8))
			return SchedProbe{Loss: o, Outputs: []*Node{o}, Leaves: []*Node{a}}
		}},

		// Aliasing and reuse.
		{"alias/add-self", func(tp *Tape) SchedProbe {
			a := tp.Var(testMat(3, 4, 70))
			o := tp.Add(a, a)
			return SchedProbe{Loss: tp.SumAll(o), Outputs: []*Node{o}, Leaves: []*Node{a}}
		}},
		{"alias/mul-self-square", func(tp *Tape) SchedProbe {
			a := tp.Var(testMat(3, 3, 71))
			o := tp.MatMul(a, a)
			return SchedProbe{Loss: tp.SumAll(o), Outputs: []*Node{o}, Leaves: []*Node{a}}
		}},
		{"alias/shared-subexpression", func(tp *Tape) SchedProbe {
			a, b, c := tp.Var(testMat(3, 4, 72)), tp.Var(testMat(3, 4, 73)), tp.Var(testMat(3, 4, 74))
			u := tp.Mul(a, b)
			o := tp.Add(u, tp.Mul(u, c)) // u consumed twice
			return SchedProbe{Loss: tp.SumAll(o), Outputs: []*Node{o, u}, Leaves: []*Node{a, b, c}}
		}},
		{"alias/affine2-shared-input", func(tp *Tape) SchedProbe {
			x := tp.Var(testMat(3, 4, 75))
			wx, wh := tp.Var(testMat(4, 2, 76)), tp.Var(testMat(4, 2, 77))
			b := tp.Var(testMat(1, 2, 78))
			o := tp.Affine2(x, wx, x, wh, b, ActSigmoid) // same node as both inputs
			return SchedProbe{Loss: tp.SumAll(o), Outputs: []*Node{o}, Leaves: []*Node{x, wx, wh, b}}
		}},
		{"reparameterize", func(tp *Tape) SchedProbe {
			mu, logSig := tp.Var(testMat(3, 2, 79)), tp.Var(testMat(3, 2, 80))
			noise := Get(3, 2)
			copy(noise.Data, testMat(3, 2, 81).Data)
			z := tp.Add(mu, tp.Mul(tp.Owned(noise), tp.Exp(logSig)))
			return SchedProbe{Loss: tp.SumAll(tp.Mul(z, z)), Outputs: []*Node{z}, Leaves: []*Node{mu, logSig}}
		}},
		{"gru-recurrence", func(tp *Tape) SchedProbe {
			return gruProbe(tp, 4, 0)
		}},

		// Checkpoint segments (inert on the plain run, drop+remat on the
		// scheduled one).
		{"checkpoint/chain", func(tp *Tape) SchedProbe {
			a := tp.Var(testMat(4, 4, 90))
			var mid, out *Node
			tp.Checkpoint(func() {
				mid = tp.Tanh(tp.MatMul(a, a))
				tp.Keep(mid)
			})
			tp.Checkpoint(func() {
				out = tp.Sigmoid(tp.MatMul(mid, a))
				tp.Keep(out)
			})
			return SchedProbe{Loss: tp.SumAll(out), Outputs: []*Node{mid, out}, Leaves: []*Node{a}}
		}},
		{"checkpoint/gru-segments", func(tp *Tape) SchedProbe {
			return gruProbe(tp, 6, 2)
		}},
		{"checkpoint/fuse-across-boundary", func(tp *Tape) SchedProbe {
			// Found by FuzzTapeSchedule: a fusable producer recorded
			// inside a segment, consumed by an activation outside it. The
			// producer's interior operands are dropped at segment close,
			// so the fusion pass must leave the unfused schedule in place
			// (the fused closure would read them before rematerialization).
			a := tp.Var(testMat(3, 3, 94))
			var m *Node
			tp.Checkpoint(func() {
				mid := tp.Add(tp.Add(a, a), a) // interior, dropped at close
				m = tp.MatMul(mid, a)
				tp.Keep(m)
			})
			o := tp.Tanh(m)
			return SchedProbe{Loss: tp.SumAll(o), Outputs: []*Node{o, m}, Leaves: []*Node{a}}
		}},
		{"checkpoint/owned-inside-segment", func(tp *Tape) SchedProbe {
			mu, logSig := tp.Var(testMat(3, 2, 91)), tp.Var(testMat(3, 2, 92))
			var z *Node
			tp.Checkpoint(func() {
				noise := Get(3, 2)
				copy(noise.Data, testMat(3, 2, 93).Data)
				z = tp.Mul(tp.Add(mu, tp.Mul(tp.Owned(noise), tp.Exp(logSig))), mu)
				tp.Keep(z)
			})
			return SchedProbe{Loss: tp.SumAll(z), Outputs: []*Node{z}, Leaves: []*Node{mu, logSig}}
		}},
	}

	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if err := AssertSchedEquiv(SchedAll, tc.build); err != nil {
				t.Fatal(err)
			}
		})
	}
}

func unaryCase(op func(tp *Tape, a *Node) *Node) func(tp *Tape) SchedProbe {
	return func(tp *Tape) SchedProbe {
		a := tp.Var(testMat(3, 4, 99))
		o := op(tp, a)
		loss := o
		if o.Value.Rows != 1 || o.Value.Cols != 1 {
			loss = tp.SumAll(o)
		}
		return SchedProbe{Loss: loss, Outputs: []*Node{o}, Leaves: []*Node{a}}
	}
}

func affineCase(act Act) func(tp *Tape) SchedProbe {
	return func(tp *Tape) SchedProbe {
		x, w, b := tp.Var(testMat(3, 4, 16)), tp.Var(testMat(4, 2, 17)), tp.Var(testMat(1, 2, 18))
		o := tp.Affine(x, w, b, act)
		return SchedProbe{Loss: tp.SumAll(o), Outputs: []*Node{o}, Leaves: []*Node{x, w, b}}
	}
}

func affine2Case(act Act) func(tp *Tape) SchedProbe {
	return func(tp *Tape) SchedProbe {
		x, wx := tp.Var(testMat(3, 4, 16)), tp.Var(testMat(4, 2, 17))
		h, wh := tp.Var(testMat(3, 5, 18)), tp.Var(testMat(5, 2, 19))
		b := tp.Var(testMat(1, 2, 20))
		o := tp.Affine2(x, wx, h, wh, b, act)
		return SchedProbe{Loss: tp.SumAll(o), Outputs: []*Node{o}, Leaves: []*Node{x, wx, h, wh, b}}
	}
}

// gruProbe records a GRU-style recurrence over steps timesteps. With
// ckptEvery > 0 the steps are wrapped in Checkpoint segments of that many
// timesteps, the boundary hidden state Keep-pinned exactly like the
// trainer does.
func gruProbe(tp *Tape, steps, ckptEvery int) SchedProbe {
	const n, din, dh = 3, 4, 5
	wx := tp.Var(testMat(din, dh, 100))
	wh := tp.Var(testMat(dh, dh, 101))
	wxh := tp.Var(testMat(din, dh, 102))
	whh := tp.Var(testMat(dh, dh, 103))
	bz := tp.Var(testMat(1, dh, 104))
	bh := tp.Var(testMat(1, dh, 105))
	h := tp.Const(New(n, dh))
	var terms []*Node
	span := steps
	if ckptEvery > 0 {
		span = ckptEvery
	}
	for s0 := 0; s0 < steps; s0 += span {
		s1 := s0 + span
		if s1 > steps {
			s1 = steps
		}
		tp.Checkpoint(func() {
			for s := s0; s < s1; s++ {
				x := tp.Owned(Get(n, din))
				copy(x.Value.Data, testMat(n, din, int64(110+s)).Data)
				z := tp.Affine2(x, wx, h, wh, bz, ActSigmoid)
				hTil := tp.Affine2(x, wxh, tp.Mul(z, h), whh, bh, ActTanh)
				h = tp.Lerp(h, hTil, z)
				term := tp.MeanAll(tp.Mul(h, h))
				terms = append(terms, term)
				tp.Keep(term)
			}
			tp.Keep(h)
		})
	}
	loss := terms[0]
	for _, term := range terms[1:] {
		loss = tp.Add(loss, term)
	}
	return SchedProbe{Loss: loss, Outputs: append([]*Node{h}, terms...),
		Leaves: []*Node{wx, wh, wxh, whh, bz, bh}}
}
