package tensor

import (
	"fmt"
	"os"
)

// This file defines the pluggable compute backend: the set of hot kernels
// every dense and sparse operation in the package funnels through. The
// tape, the scheduled executor, the fused backward closures, and the
// tape-free forward paths all call the same dispatch points (matMulInto,
// axpyRow, the V* vector-math helpers), so swapping the backend swaps the
// inner loops of training and generation wholesale while the recording /
// scheduling machinery above them is untouched — AssertSchedEquiv and the
// scheduler fuzzer exercise whichever backend is active for free.
//
// Bit-stability contract: every backend must produce bit-identical
// results to the pure-Go reference for all finite inputs. The kernels are
// written so this is achievable with SIMD:
//
//   - Elementwise kernels (axpy, add, scale, activations) round each
//     element independently; vectorising across elements cannot change
//     any element's result as long as no FMA contraction is introduced,
//     so SIMD variants use separate multiply and add instructions.
//   - GEMM kernels fix one accumulation order per output element —
//     ascending p (the contraction index), with GemmNN/GemmTN adding each
//     product directly into the output element and GemmNT/GemmTT summing
//     into a fresh scalar that is added to the output once at the end.
//     SIMD variants vectorise across output elements (rows/columns), never
//     across the contraction, so each element sees the exact scalar
//     sequence of roundings.
//   - GemmTN skips zero multipliers (a[p][i] == 0 contributes nothing and
//     one-hot feature matrices are common on that path); the skip is part
//     of the kernel contract and every backend applies it identically.
//
// The one sanctioned divergence is the opt-in FMA tolerance mode
// (VRDAG_FMA=1, amd64): fused multiply-add removes one rounding per
// product, so results drift from the reference at the ULP level. The
// drift is pinned by TestFMAToleranceULP; the default mode never uses
// FMA. See docs/ARCHITECTURE.md "Compute backends".

// Backend implements the hot compute kernels. Implementations must be
// stateless and safe for concurrent use: the parallel GEMM/SpMM paths
// invoke kernels from multiple goroutines on disjoint output rows.
type Backend interface {
	// Name identifies the backend ("purego", "tuned", "avx2", "neon", …).
	Name() string

	// GemmNN accumulates out += a·b (a: m×k, b: k×n, out: m×n).
	GemmNN(out, a, b *Matrix)
	// GemmTN accumulates out += aᵀ·b (a: k×m, b: k×n, out: m×n).
	GemmTN(out, a, b *Matrix)
	// GemmNT accumulates out += a·bᵀ (a: m×k, b: n×k, out: m×n).
	GemmNT(out, a, b *Matrix)
	// GemmTT accumulates out += aᵀ·bᵀ (a: k×m, b: n×k, out: m×n).
	GemmTT(out, a, b *Matrix)

	// AxpyRow computes dst[i] += alpha*src[i] over len(src) elements.
	// The dense GEMM row kernels and the CSR MulDense/MulDenseT row
	// kernels are built on it.
	AxpyRow(dst, src []float64, alpha float64)
	// Add computes dst[i] += src[i] over len(src) elements.
	Add(dst, src []float64)
	// Scale computes x[i] *= s in place.
	Scale(x []float64, s float64)

	// VSigmoid, VTanh, VExp, VReLU, VLeakyReLU apply the activation in
	// place. VExp clamps inputs to 40 before exponentiation (the Tape.Exp
	// stability clamp). All backends currently share one scalar
	// implementation so the transcendental rounding is identical
	// everywhere; the interface carries them so a tolerance-mode
	// polynomial implementation can slot in per backend.
	VSigmoid(x []float64)
	VTanh(x []float64)
	VExp(x []float64)
	VReLU(x []float64)
	VLeakyReLU(x []float64, slope float64)

	// VActGrad computes dst[i] = grad[i] * act'(out[i]) with the
	// derivative expressed through the activation output — the fused
	// Affine/AffineSum backward (preGrad). Every act's derivative is
	// rational in the output (1/0/slope for the ReLU family, 1−y² for
	// tanh, y(1−y) for sigmoid), so SIMD implementations stay
	// bit-identical: each element is the same multiply chain.
	VActGrad(dst, grad, out []float64, act Act)
}

// compiledBackends lists every backend compiled into this binary in
// preference order (later entries preferred by auto-selection). The
// build-tagged asm files append to it from init when the CPU qualifies.
var compiledBackends = []Backend{pureBackend{}, tunedBackend{}}

// backendImpl is the active backend. It is chosen once before main (or
// the test binary) runs; SetBackend may replace it at startup or between
// benchmark phases, but must not race with in-flight kernels. The
// declaration default covers package variable initialisers that run
// kernels before init(); selection happens in init(), after every
// build-tagged registration var has appended to compiledBackends.
var backendImpl Backend = pureBackend{}

func init() { backendImpl = initBackend() }

// registerBackend appends a build-tagged backend during package variable
// initialisation (before any init() runs, so selection sees it).
func registerBackend(b Backend) struct{} {
	compiledBackends = append(compiledBackends, b)
	return struct{}{}
}

// initBackend resolves the active backend: the VRDAG_BACKEND environment
// variable if set ("purego", "tuned", "avx2", "neon"), otherwise the most
// capable compiled-in backend for this CPU.
func initBackend() Backend {
	if name := os.Getenv("VRDAG_BACKEND"); name != "" {
		if b := backendByName(name); b != nil {
			return b
		}
		fmt.Fprintf(os.Stderr, "vrdag/tensor: VRDAG_BACKEND=%q not available in this build (have %v); using %q\n",
			name, BackendNames(), compiledBackends[len(compiledBackends)-1].Name())
	}
	return compiledBackends[len(compiledBackends)-1]
}

func backendByName(name string) Backend {
	for _, b := range compiledBackends {
		if b.Name() == name {
			return b
		}
	}
	return nil
}

// ActiveBackend returns the name of the backend serving all kernel calls.
func ActiveBackend() string { return backendImpl.Name() }

// BackendNames lists the backends compiled into this binary, least to
// most preferred.
func BackendNames() []string {
	names := make([]string, len(compiledBackends))
	for i, b := range compiledBackends {
		names[i] = b.Name()
	}
	return names
}

// SetBackend switches the active backend by name. It is a startup /
// benchmark-harness hook, not a concurrency feature: callers must
// guarantee no kernel is executing during the switch.
func SetBackend(name string) error {
	b := backendByName(name)
	if b == nil {
		return fmt.Errorf("tensor: backend %q not compiled in (have %v)", name, BackendNames())
	}
	backendImpl = b
	return nil
}

// CPUFeatures reports the SIMD-relevant CPU features detected at startup
// (empty on platforms without a probe or under the purego build tag).
func CPUFeatures() []string { return cpuFeatureNames }

// cpuFeatureNames is populated by the per-architecture probe's init.
var cpuFeatureNames []string

// ---- Exported vector-math dispatch ----
//
// The tape-free forward paths (internal/nn, internal/gnn, the decode loop
// in internal/core) apply activations over raw slices; routing them here
// keeps every elementwise transcendental on the backend's kernel.

// VSigmoid applies the logistic function elementwise in place.
func VSigmoid(x []float64) { backendImpl.VSigmoid(x) }

// VTanh applies tanh elementwise in place.
func VTanh(x []float64) { backendImpl.VTanh(x) }

// VExp applies exp(min(x, 40)) elementwise in place (the tape's Exp
// stability clamp).
func VExp(x []float64) { backendImpl.VExp(x) }

// VReLU applies max(0, x) elementwise in place.
func VReLU(x []float64) { backendImpl.VReLU(x) }

// VLeakyReLU applies x>0 ? x : slope*x elementwise in place.
func VLeakyReLU(x []float64, slope float64) { backendImpl.VLeakyReLU(x, slope) }
