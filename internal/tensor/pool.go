package tensor

import (
	"math/bits"
	"math/rand/v2"
	"runtime"
	"sync"
	"sync/atomic"
	"unsafe"
)

// This file implements the pooled matrix arena: a process-wide,
// size-bucketed free list of float64 buffers that the tape, the tape-free
// forward passes, and the sparse kernels draw their scratch and output
// matrices from. Training steps and generation requests churn through
// thousands of short-lived matrices with a small set of recurring shapes;
// recycling the backing slices removes that load from the garbage
// collector entirely once the pool is warm.
//
// Each size bucket is sharded: GOMAXPROCS-many free lists (capped at
// maxPoolShards) each behind their own mutex, plus one shared overflow
// list per bucket. A caller picks a shard with a cheap per-thread random
// hint, so concurrent training workers and generation requests almost
// never contend on the same lock. A Get that misses its home shard scans
// the other shards with try-locks (a "steal"), then the overflow list,
// and only then allocates. A Put lands on the caller's home shard until
// that shard reaches its byte budget, after which the buffer spills to
// the overflow list or, past the bucket-wide budget, is dropped for the
// GC to reclaim.
//
// Ownership discipline:
//
//   - Get returns a zeroed matrix whose buffer may be recycled. The caller
//     owns it until it either escapes into a long-lived structure (never
//     Put — the GC reclaims it as usual) or is explicitly returned with Put.
//   - Put transfers ownership of the buffer to the arena: it must be
//     called at most once per matrix, only by the buffer's sole owner, and
//     neither the matrix nor any view sharing its buffer may be used
//     afterwards. Buffers with non-bucket capacities (views, odd-size
//     allocations) are dropped rather than pooled, but that is a
//     memory-behaviour detail, not a licence to Put shared data.
//   - Tape-recorded operations allocate their outputs from the pool and
//     Tape.Reset returns them, so callers of the autodiff layer never Put
//     manually; they only avoid holding node values across a Reset.

const (
	minBucketBits = 6  // smallest pooled buffer: 64 floats (512 B)
	maxBucketBits = 24 // largest pooled buffer: 16Mi floats (128 MB)
	numBuckets    = maxBucketBits - minBucketBits + 1

	// maxBucketBytes bounds the memory one bucket retains so a burst of
	// huge intermediates cannot pin unbounded memory. Half the budget is
	// split evenly across the shards, half goes to the overflow list.
	maxBucketBytes = 1 << 25 // 32 MB per bucket

	// maxPoolShards caps the shard count: past ~16 ways the locks stop
	// being the bottleneck and the extra lists only fragment the pool.
	maxPoolShards = 16
)

// poolShards is fixed at init from GOMAXPROCS; shard ids index both the
// per-bucket free lists and the per-shard counters.
var poolShards = func() int {
	n := runtime.GOMAXPROCS(0)
	if n < 1 {
		n = 1
	}
	if n > maxPoolShards {
		n = maxPoolShards
	}
	return n
}()

// maxShardBytes is one shard's retained-byte budget within a bucket.
var maxShardBytes = maxBucketBytes / 2 / poolShards

type freeList struct {
	mu   sync.Mutex
	free [][]float64
	_    [5]uint64 // keep neighbouring shard locks off one cache line
}

// pop removes and returns the most recently freed buffer, or nil when the
// list is empty. With try set it gives up instead of blocking on the lock
// (the steal path must never serialize behind a busy shard).
func (l *freeList) pop(try bool) []float64 {
	if try {
		if !l.mu.TryLock() {
			return nil
		}
	} else {
		l.mu.Lock()
	}
	var data []float64
	if k := len(l.free); k > 0 {
		data = l.free[k-1]
		l.free[k-1] = nil
		l.free = l.free[:k-1]
	}
	l.mu.Unlock()
	return data
}

// push appends buf if the list stays within budget bytes; reports whether
// the buffer was retained.
func (l *freeList) push(buf []float64, budget int) bool {
	l.mu.Lock()
	ok := (len(l.free)+1)*cap(buf)*8 <= budget
	if ok {
		l.free = append(l.free, buf)
	}
	l.mu.Unlock()
	return ok
}

type bucketPool struct {
	shards   []freeList // len poolShards
	overflow freeList
}

// shardCounters accumulate per-shard arena traffic. They are keyed by the
// caller's shard hint, not by where a buffer physically came from, so the
// numbers describe contention domains: a hot shard means many goroutines
// hash there, a high steal count means Puts and Gets land on different
// shards (e.g. producer/consumer pipelines).
type shardCounters struct {
	gets, hits, frees, steals atomic.Int64
	_                         [4]uint64 // pad to a cache line
}

var (
	arena      [numBuckets]bucketPool
	shardStats []shardCounters

	// poolLive tracks bytes of bucketed buffers currently checked out
	// (Get minus Put); poolPeakLive is its high-water mark. Buffers that
	// escape into long-lived structures stay counted until Put, so the
	// pair describes arena pressure, not process RSS.
	poolLive     atomic.Int64
	poolPeakLive atomic.Int64
)

func init() {
	for i := range arena {
		arena[i].shards = make([]freeList, poolShards)
	}
	shardStats = make([]shardCounters, poolShards)
}

// trackPoolLive adjusts the checked-out byte count and, for positive
// deltas, advances the high-water mark.
func trackPoolLive(delta int64) {
	v := poolLive.Add(delta)
	if delta <= 0 {
		return
	}
	for {
		p := poolPeakLive.Load()
		if v <= p || poolPeakLive.CompareAndSwap(p, v) {
			return
		}
	}
}

// ResetPoolPeakLive rewinds the arena's live-byte high-water mark to the
// current level (benchmark phase boundaries).
func ResetPoolPeakLive() { poolPeakLive.Store(poolLive.Load()) }

// shardHint picks the caller's home shard. rand/v2's global generator is
// backed by per-thread runtime state, so this is a few nanoseconds, scales
// with cores, and — unlike a shared atomic counter — adds no contention of
// its own. The choice never affects results, only which lock is taken.
func shardHint() int {
	if poolShards == 1 {
		return 0
	}
	return int(rand.Uint32N(uint32(poolShards)))
}

// cacheLineFloats is the allocation alignment in float64s: 64 bytes, one
// cache line and one AVX-512 vector. Go only guarantees 8-byte alignment
// for float64 slices; the arena over-allocates by one line and slides the
// base so every pooled buffer starts on a line boundary. SIMD kernels
// then never split a vector load across lines, and two matrices never
// false-share a line. The aligned 3-index reslice keeps cap at the exact
// bucket size, so Put's power-of-two check and the byte accounting are
// untouched (the hidden prefix is retained by the slice's backing array).
const cacheLineFloats = 8

// alignedAlloc returns a zeroed n-float slice (n a bucket size) whose
// base address is 64-byte aligned and whose cap is exactly n.
func alignedAlloc(n int) []float64 {
	raw := make([]float64, n+cacheLineFloats-1)
	off := 0
	if r := uintptr(unsafe.Pointer(&raw[0])) & 63; r != 0 {
		off = int((64 - r) / 8)
	}
	return raw[off : off+n : off+n]
}

// matrixHeaders recycles Matrix structs alongside the buffer arena so a
// warm Get/Put cycle performs no allocation at all: the buffer comes from
// a shard free list, the header from here. Put detaches the buffer before
// recycling the header, so a stale reference to a Put matrix can never
// reach a recycled buffer through it.
var matrixHeaders = sync.Pool{New: func() any { return new(Matrix) }}

// bucketIndex returns the arena bucket for a buffer of n floats, or -1
// when n is zero or exceeds the largest bucket.
func bucketIndex(n int) int {
	if n <= 0 {
		return -1
	}
	b := bits.Len(uint(n - 1)) // ceil(log2 n)
	if b < minBucketBits {
		b = minBucketBits
	}
	if b > maxBucketBits {
		return -1
	}
	return b - minBucketBits
}

// Get returns a zeroed rows×cols matrix backed by a pooled buffer. Shapes
// too large for the arena fall back to a plain allocation.
func Get(rows, cols int) *Matrix {
	n := rows * cols
	idx := bucketIndex(n)
	if idx < 0 {
		return New(rows, cols)
	}
	bp := &arena[idx]
	h := shardHint()
	sc := &shardStats[h]
	sc.gets.Add(1)
	trackPoolLive(8 << (idx + minBucketBits))

	data := bp.shards[h].pop(false)
	if data == nil && poolShards > 1 {
		for i := 1; i < poolShards; i++ {
			if data = bp.shards[(h+i)%poolShards].pop(true); data != nil {
				sc.steals.Add(1)
				break
			}
		}
	}
	if data == nil {
		data = bp.overflow.pop(false)
	}
	if data == nil {
		data = alignedAlloc(1 << (idx + minBucketBits))
	} else {
		sc.hits.Add(1)
		data = data[:n]
		for i := range data {
			data[i] = 0
		}
	}
	m := matrixHeaders.Get().(*Matrix)
	m.Rows, m.Cols, m.Data = rows, cols, data[:n]
	return m
}

// Put returns m's buffer to the arena. The caller relinquishes the buffer:
// neither m nor any view sharing its backing slice may be used afterwards.
// Matrices whose backing capacity is not a bucket size (sub-matrix views,
// odd-size allocations) are dropped rather than pooled.
func Put(m *Matrix) {
	if m == nil {
		return
	}
	c := cap(m.Data)
	if c == 0 || c&(c-1) != 0 {
		return
	}
	b := bits.TrailingZeros(uint(c))
	if b < minBucketBits || b > maxBucketBits {
		return
	}
	bp := &arena[b-minBucketBits]
	h := shardHint()
	shardStats[h].frees.Add(1)
	trackPoolLive(-int64(c) * 8)
	buf := m.Data[:c]
	// Recycle the header only on the pooled path: double-Putting a pooled
	// buffer is already fatal (the free list would hand it out twice), so
	// header reuse adds no new hazard there, while the early returns above
	// keep today's forgiving behaviour for views and odd-size matrices.
	m.Rows, m.Cols, m.Data = 0, 0, nil
	matrixHeaders.Put(m)
	if bp.shards[h].push(buf, maxShardBytes) {
		return
	}
	bp.overflow.push(buf, maxBucketBytes/2)
}

// PoolStats is a snapshot of the arena counters; exposed so serving-layer
// metrics can report buffer-reuse health alongside runtime.MemStats.
type PoolStats struct {
	Gets          int64 // pool allocations requested since process start
	Hits          int64 // requests served by recycling a buffer
	Puts          int64 // buffers returned
	Steals        int64 // hits served by a shard other than the caller's
	RetainedBytes int64 // bytes currently held on free lists
	LiveBytes     int64 // bytes of bucketed buffers currently checked out
	PeakLiveBytes int64 // high-water mark of LiveBytes (ResetPoolPeakLive rewinds)

	Shards []PoolShardStats // per-shard traffic, indexed by shard id
}

// PoolShardStats is one shard's slice of the arena counters.
type PoolShardStats struct {
	Gets          int64 `json:"gets"`
	Hits          int64 `json:"hits"`
	Puts          int64 `json:"puts"`
	Steals        int64 `json:"steals"`
	RetainedBytes int64 `json:"retained_bytes"`
}

// ReadPoolStats returns current arena counters, including the per-shard
// breakdown (len(Shards) == the process's shard count).
func ReadPoolStats() PoolStats {
	s := PoolStats{
		Shards:        make([]PoolShardStats, poolShards),
		LiveBytes:     poolLive.Load(),
		PeakLiveBytes: poolPeakLive.Load(),
	}
	for h := range shardStats {
		sc := &shardStats[h]
		sh := PoolShardStats{
			Gets:   sc.gets.Load(),
			Hits:   sc.hits.Load(),
			Puts:   sc.frees.Load(),
			Steals: sc.steals.Load(),
		}
		s.Gets += sh.Gets
		s.Hits += sh.Hits
		s.Puts += sh.Puts
		s.Steals += sh.Steals
		s.Shards[h] = sh
	}
	for i := range arena {
		bp := &arena[i]
		bufBytes := int64(8 << (i + minBucketBits))
		for h := range bp.shards {
			l := &bp.shards[h]
			l.mu.Lock()
			held := int64(len(l.free)) * bufBytes
			l.mu.Unlock()
			s.Shards[h].RetainedBytes += held
			s.RetainedBytes += held
		}
		bp.overflow.mu.Lock()
		s.RetainedBytes += int64(len(bp.overflow.free)) * bufBytes
		bp.overflow.mu.Unlock()
	}
	return s
}
