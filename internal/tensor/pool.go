package tensor

import (
	"math/bits"
	"sync"
	"sync/atomic"
)

// This file implements the pooled matrix arena: a process-wide,
// size-bucketed free list of float64 buffers that the tape, the tape-free
// forward passes, and the sparse kernels draw their scratch and output
// matrices from. Training steps and generation requests churn through
// thousands of short-lived matrices with a small set of recurring shapes;
// recycling the backing slices removes that load from the garbage
// collector entirely once the pool is warm.
//
// Ownership discipline:
//
//   - Get returns a zeroed matrix whose buffer may be recycled. The caller
//     owns it until it either escapes into a long-lived structure (never
//     Put — the GC reclaims it as usual) or is explicitly returned with Put.
//   - Put transfers ownership of the buffer to the arena: it must be
//     called at most once per matrix, only by the buffer's sole owner, and
//     neither the matrix nor any view sharing its buffer may be used
//     afterwards. Buffers with non-bucket capacities (views, odd-size
//     allocations) are dropped rather than pooled, but that is a
//     memory-behaviour detail, not a licence to Put shared data.
//   - Tape-recorded operations allocate their outputs from the pool and
//     Tape.Reset returns them, so callers of the autodiff layer never Put
//     manually; they only avoid holding node values across a Reset.

const (
	minBucketBits = 6  // smallest pooled buffer: 64 floats (512 B)
	maxBucketBits = 24 // largest pooled buffer: 16Mi floats (128 MB)
	numBuckets    = maxBucketBits - minBucketBits + 1

	// maxBucketBytes bounds the memory one bucket retains so a burst of
	// huge intermediates cannot pin unbounded memory.
	maxBucketBytes = 1 << 25 // 32 MB per bucket
)

type bucketPool struct {
	mu   sync.Mutex
	free [][]float64
}

var (
	arena     [numBuckets]bucketPool
	poolGets  atomic.Int64
	poolHits  atomic.Int64
	poolFrees atomic.Int64
)

// bucketIndex returns the arena bucket for a buffer of n floats, or -1
// when n is zero or exceeds the largest bucket.
func bucketIndex(n int) int {
	if n <= 0 {
		return -1
	}
	b := bits.Len(uint(n - 1)) // ceil(log2 n)
	if b < minBucketBits {
		b = minBucketBits
	}
	if b > maxBucketBits {
		return -1
	}
	return b - minBucketBits
}

// Get returns a zeroed rows×cols matrix backed by a pooled buffer. Shapes
// too large for the arena fall back to a plain allocation.
func Get(rows, cols int) *Matrix {
	n := rows * cols
	idx := bucketIndex(n)
	if idx < 0 {
		return New(rows, cols)
	}
	bp := &arena[idx]
	var data []float64
	bp.mu.Lock()
	if k := len(bp.free); k > 0 {
		data = bp.free[k-1]
		bp.free[k-1] = nil
		bp.free = bp.free[:k-1]
	}
	bp.mu.Unlock()
	poolGets.Add(1)
	if data == nil {
		data = make([]float64, 1<<(idx+minBucketBits))
	} else {
		poolHits.Add(1)
		data = data[:n]
		for i := range data {
			data[i] = 0
		}
	}
	return &Matrix{Rows: rows, Cols: cols, Data: data[:n]}
}

// Put returns m's buffer to the arena. The caller relinquishes the buffer:
// neither m nor any view sharing its backing slice may be used afterwards.
// Matrices whose backing capacity is not a bucket size (sub-matrix views,
// odd-size allocations) are dropped rather than pooled.
func Put(m *Matrix) {
	if m == nil {
		return
	}
	c := cap(m.Data)
	if c == 0 || c&(c-1) != 0 {
		return
	}
	b := bits.TrailingZeros(uint(c))
	if b < minBucketBits || b > maxBucketBits {
		return
	}
	idx := b - minBucketBits
	bp := &arena[idx]
	bp.mu.Lock()
	if (len(bp.free)+1)*c*8 <= maxBucketBytes {
		bp.free = append(bp.free, m.Data[:c])
	}
	bp.mu.Unlock()
	poolFrees.Add(1)
}

// PoolStats is a snapshot of the arena counters; exposed so serving-layer
// metrics can report buffer-reuse health alongside runtime.MemStats.
type PoolStats struct {
	Gets          int64 // pool allocations requested since process start
	Hits          int64 // requests served by recycling a buffer
	Puts          int64 // buffers returned
	RetainedBytes int64 // bytes currently held on free lists
}

// ReadPoolStats returns current arena counters.
func ReadPoolStats() PoolStats {
	s := PoolStats{Gets: poolGets.Load(), Hits: poolHits.Load(), Puts: poolFrees.Load()}
	for i := range arena {
		bp := &arena[i]
		bp.mu.Lock()
		s.RetainedBytes += int64(len(bp.free)) * int64(8<<(i+minBucketBits))
		bp.mu.Unlock()
	}
	return s
}
