package tensor

import "testing"

// fuzzCSR is the fixed 3×3 sparse operand for fuzzed SpMM ops.
func fuzzCSR() *CSR {
	return NewCSR(3, 3, []int{0, 0, 1, 2, 2}, []int{0, 2, 1, 0, 2},
		[]float64{1, -0.5, 2, 0.25, -1})
}

// fuzzBuild interprets data as a stack-machine program over 3×3 matrices
// and records it on tp. Each byte's low nibble selects the op, the high
// nibble parameterises it (scale factor, activation, checkpoint span). The
// interpretation is fully deterministic, so the same bytes replayed on a
// plain and a scheduled tape must produce bit-identical results.
func fuzzBuild(tp *Tape, data []byte) SchedProbe {
	a := tp.Var(testMat(3, 3, 201))
	b := tp.Var(testMat(3, 3, 202))
	w := tp.Var(testMat(3, 3, 203))
	bias := tp.Var(testMat(1, 3, 204))
	leaves := []*Node{a, b, w, bias}
	stack := []*Node{a, b}
	pop := func() *Node {
		n := stack[len(stack)-1]
		if len(stack) > 1 {
			stack = stack[:len(stack)-1]
		}
		return n
	}
	push := func(n *Node) {
		if len(stack) < 8 {
			stack = append(stack, n)
		}
	}
	acts := [...]Act{ActIdent, ActSigmoid, ActTanh, ActReLU, ActLeakyReLU}

	applyOp := func(op byte) {
		hi := float64(op>>4)/8 - 0.9 // deterministic parameter in [-0.9, 0.975]
		switch op % 16 {
		case 0:
			push(tp.Add(pop(), pop()))
		case 1:
			push(tp.Sub(pop(), pop()))
		case 2:
			push(tp.Mul(pop(), pop()))
		case 3:
			push(tp.MatMul(pop(), pop()))
		case 4:
			push(tp.Scale(pop(), hi))
		case 5:
			push(tp.AddScalar(pop(), hi))
		case 6:
			push(tp.Sigmoid(pop()))
		case 7:
			push(tp.Tanh(pop()))
		case 8:
			push(tp.ReLU(pop()))
		case 9:
			push(tp.LeakyReLU(pop(), 0.1))
		case 10:
			push(tp.Affine(pop(), w, bias, acts[int(op>>4)%len(acts)]))
		case 11:
			push(tp.SpMM(fuzzCSR(), pop()))
		case 12:
			z := tp.Sigmoid(pop())
			y := pop()
			push(tp.Lerp(pop(), y, z))
		case 13:
			push(stack[len(stack)-1]) // dup: aliased consumption
		case 15:
			push(tp.Exp(tp.Scale(pop(), 0.1)))
		}
	}

	i := 0
	for i < len(data) {
		op := data[i]
		i++
		if op%16 == 14 {
			// Checkpoint segment wrapping the next 1..4 ops; everything
			// still on the stack at close crosses the boundary and must
			// be pinned, exactly like the trainer pins the hidden state.
			span := int(op>>4)%4 + 1
			tp.Checkpoint(func() {
				for j := 0; j < span && i < len(data); j++ {
					inner := data[i]
					i++
					if inner%16 == 14 {
						inner = 7 // no nesting: remap to Tanh
					}
					applyOp(inner)
				}
				tp.Keep(stack...)
			})
			continue
		}
		applyOp(op)
	}

	loss := tp.SumAll(stack[0])
	for _, n := range stack[1:] {
		loss = tp.Add(loss, tp.SumAll(n))
	}
	outs := append([]*Node(nil), stack...)
	return SchedProbe{Loss: loss, Outputs: outs, Leaves: leaves}
}

// FuzzTapeSchedule feeds random op DAGs through the differential harness:
// the scheduled executor (lifetime release + fusion + rematerialization)
// must produce bit-identical outputs and leaf gradients to the plain
// record-order executor, with no use-after-release and an exactly balanced
// arena (the harness checks get/put deltas and the live-byte ledger).
func FuzzTapeSchedule(f *testing.F) {
	seeds := []string{
		"0123456789:;<=>?",                 // every opcode once, checkpoint near the tail
		"33773377",                         // MatMul/Tanh fusion chains
		">012>345>678",                     // repeated checkpoint segments
		"=3=3=3",                           // dup + self-MatMul aliasing
		"J6:7J6:7",                         // Affine/activation mixes
		"N01N01N01",                        // single-op segments back to back
		"<<<???",                           // Lerp pressure then Exp chain
		"4455445544",                       // elementwise fusion chains (Scale/AddScalar)
		";8;8;8",                           // SpMM/ReLU fusion
		"\x0e\x0e\x0e\x0e",                 // checkpoint ops with nothing to wrap
		"?N3?N3",                           // Exp, segment-wrapped MatMul
		"0123456789:;<=>?@ABCDEFGHIJKLMNO", // two full opcode sweeps
	}
	for _, s := range seeds {
		f.Add([]byte(s))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) == 0 || len(data) > 64 {
			t.Skip()
		}
		if err := AssertSchedEquiv(SchedAll, func(tp *Tape) SchedProbe {
			return fuzzBuild(tp, data)
		}); err != nil {
			t.Fatal(err)
		}
	})
}
