package tensor

import (
	"math/rand"
	"testing"
)

func benchMatrices(n int) (*Matrix, *Matrix) {
	rng := rand.New(rand.NewSource(1))
	return Randn(n, n, 1, rng), Randn(n, n, 1, rng)
}

func BenchmarkMatMul64(b *testing.B) {
	x, y := benchMatrices(64)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		MatMul(x, y)
	}
}

func BenchmarkMatMul256(b *testing.B) {
	x, y := benchMatrices(256)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		MatMul(x, y)
	}
}

func BenchmarkSpMM(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	n := 1024
	var ri, ci []int
	for i := 0; i < n*8; i++ {
		ri = append(ri, rng.Intn(n))
		ci = append(ci, rng.Intn(n))
	}
	s := NewCSR(n, n, ri, ci, nil)
	d := Randn(n, 32, 1, rng)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.MulDense(d)
	}
}

func BenchmarkTapeForwardBackwardMLP(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	w1 := Randn(32, 64, 0.1, rng)
	w2 := Randn(64, 8, 0.1, rng)
	x := Randn(128, 32, 1, rng)
	y := Randn(128, 8, 1, rng)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tp := NewTape()
		a := tp.Var(w1)
		c := tp.Var(w2)
		h := tp.Tanh(tp.MatMul(tp.Const(x), a))
		out := tp.MatMul(h, c)
		tp.Backward(tp.MSELoss(out, y))
	}
}

func BenchmarkSegmentSoftmax(b *testing.B) {
	rng := rand.New(rand.NewSource(4))
	e := 8192
	scores := Randn(e, 1, 1, rng)
	seg := make([]int, e)
	for i := range seg {
		seg[i] = rng.Intn(512)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tp := NewTape()
		tp.SegmentSoftmax(tp.Const(scores), seg, 512)
	}
}
