package tensor

import (
	"math/rand"
	"testing"
)

func benchMatrices(n int) (*Matrix, *Matrix) {
	rng := rand.New(rand.NewSource(1))
	return Randn(n, n, 1, rng), Randn(n, n, 1, rng)
}

func BenchmarkMatMul64(b *testing.B) {
	x, y := benchMatrices(64)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// Returning the product keeps the steady state allocation-free:
		// the buffer recycles through the arena, the header through the
		// matrixHeaders pool.
		Put(MatMul(x, y))
	}
}

func BenchmarkMatMul256(b *testing.B) {
	x, y := benchMatrices(256)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Put(MatMul(x, y))
	}
}

func benchCSR(n, nnz int) (*CSR, *Matrix) {
	rng := rand.New(rand.NewSource(2))
	var ri, ci []int
	for i := 0; i < nnz; i++ {
		ri = append(ri, rng.Intn(n))
		ci = append(ci, rng.Intn(n))
	}
	return NewCSR(n, n, ri, ci, nil), Randn(n, 32, 1, rng)
}

func BenchmarkSpMM(b *testing.B) {
	s, d := benchCSR(1024, 1024*8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Put(s.MulDense(d))
	}
}

// BenchmarkSpMMT measures the transposed product through the memoised
// gather index (the SpMM backward path).
func BenchmarkSpMMT(b *testing.B) {
	s, d := benchCSR(1024, 1024*8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Put(s.MulDenseT(d))
	}
}

func BenchmarkTapeForwardBackwardMLP(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	w1 := Randn(32, 64, 0.1, rng)
	w2 := Randn(64, 8, 0.1, rng)
	x := Randn(128, 32, 1, rng)
	y := Randn(128, 8, 1, rng)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tp := NewTape()
		a := tp.Var(w1)
		c := tp.Var(w2)
		h := tp.Tanh(tp.MatMul(tp.Const(x), a))
		out := tp.MatMul(h, c)
		tp.Backward(tp.MSELoss(out, y))
	}
}

// BenchmarkTapeStepPooled is the steady-state training-step shape: one
// tape reused across iterations with Reset returning every buffer to the
// arena. Compare its allocs/op with BenchmarkTapeForwardBackwardMLP to
// see what the pool removes.
func BenchmarkTapeStepPooled(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	w1 := Randn(32, 64, 0.1, rng)
	b1 := Randn(1, 64, 0.1, rng)
	w2 := Randn(64, 8, 0.1, rng)
	b2 := Randn(1, 8, 0.1, rng)
	x := Randn(128, 32, 1, rng)
	y := Randn(128, 8, 1, rng)
	tp := NewTape()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h := tp.Affine(tp.Const(x), tp.Var(w1), tp.Var(b1), ActTanh)
		out := tp.Affine(h, tp.Var(w2), tp.Var(b2), ActIdent)
		tp.Backward(tp.MSELoss(out, y))
		tp.Reset()
	}
}

// benchTapeSched runs a GRU-like recurrent chain — the training loop's
// shape — under one scheduling configuration, reporting the tape's peak
// live bytes so the lifetime/rematerialization savings land in
// BENCH_tensor.json alongside the op timings.
func benchTapeSched(b *testing.B, s Sched, ckptEvery int) {
	rng := rand.New(rand.NewSource(5))
	const n, din, dh, steps = 64, 32, 32, 12
	wx := Randn(din, dh, 0.1, rng)
	wh := Randn(dh, dh, 0.1, rng)
	bz := Randn(1, dh, 0.1, rng)
	x := Randn(n, din, 1, rng)
	tp := NewTape()
	tp.SetSched(s)
	span := steps
	if ckptEvery > 0 {
		span = ckptEvery
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h := tp.Const(New(n, dh))
		for s0 := 0; s0 < steps; s0 += span {
			s1 := s0 + span
			if s1 > steps {
				s1 = steps
			}
			tp.Checkpoint(func() {
				for s := s0; s < s1; s++ {
					z := tp.Affine2(tp.Const(x), tp.Var(wx), h, tp.Var(wh), tp.Var(bz), ActSigmoid)
					h = tp.Lerp(h, tp.Tanh(tp.MatMul(z, tp.Var(wh))), z)
				}
				tp.Keep(h)
			})
		}
		loss := tp.MeanAll(tp.Mul(h, h))
		tp.Keep(loss)
		tp.Backward(loss)
		tp.Reset()
	}
	b.ReportMetric(float64(tp.PeakLiveBytes()), "peak-live-B")
}

// BenchmarkTapeBackwardPlain is the record-order executor baseline.
func BenchmarkTapeBackwardPlain(b *testing.B) { benchTapeSched(b, Sched{}, 0) }

// BenchmarkTapeBackwardSched runs lifetime release + fusion.
func BenchmarkTapeBackwardSched(b *testing.B) {
	benchTapeSched(b, Sched{Lifetime: true, Fuse: true}, 0)
}

// BenchmarkTapeBackwardCkpt adds rematerialization segments of 3 steps.
func BenchmarkTapeBackwardCkpt(b *testing.B) { benchTapeSched(b, SchedAll, 3) }

func BenchmarkSegmentSoftmax(b *testing.B) {
	rng := rand.New(rand.NewSource(4))
	e := 8192
	scores := Randn(e, 1, 1, rng)
	seg := make([]int, e)
	for i := range seg {
		seg[i] = rng.Intn(512)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tp := NewTape()
		tp.SegmentSoftmax(tp.Const(scores), seg, 512)
	}
}
