package gnn

import (
	"math/rand"
	"testing"

	"vrdag/internal/dyngraph"
	"vrdag/internal/tensor"
)

func benchGraph(n, edges int) *dyngraph.Snapshot {
	rng := rand.New(rand.NewSource(1))
	s := dyngraph.NewSnapshot(n, 4)
	for e := 0; e < edges; e++ {
		s.AddEdge(rng.Intn(n), rng.Intn(n))
	}
	for i := 0; i < n; i++ {
		for j := 0; j < 4; j++ {
			s.X.Set(i, j, rng.NormFloat64())
		}
	}
	return s
}

// BenchmarkEncodeValue measures the tape-free bi-flow encoding used in the
// generation hot path.
func BenchmarkEncodeValue(b *testing.B) {
	enc := NewBiFlowEncoder("e", BiFlowConfig{
		InDim: 4, Hidden: 16, OutDim: 16, Layers: 2, MLPLayers: 1, BiFlow: true,
	}, rand.New(rand.NewSource(2)))
	s := benchGraph(1000, 8000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		enc.EncodeValue(s)
	}
}

// BenchmarkGATForward measures tape-free attention aggregation.
func BenchmarkGATForward(b *testing.B) {
	g := NewGAT("g", 24, 16, rand.New(rand.NewSource(3)))
	s := benchGraph(1000, 8000)
	src, dst := s.EdgeLists()
	states := tensor.Randn(1000, 24, 1, rand.New(rand.NewSource(4)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.Forward(states, src, dst, 1000)
	}
}
