package gnn

import (
	"math/rand"
	"testing"

	"vrdag/internal/dyngraph"
	"vrdag/internal/nn"
	"vrdag/internal/tensor"
)

func TestEncodeValueMatchesTapedEncode(t *testing.T) {
	for _, biflow := range []bool{true, false} {
		rng := rand.New(rand.NewSource(11))
		cfg := BiFlowConfig{InDim: 2, Hidden: 6, OutDim: 4, Layers: 2, MLPLayers: 2, BiFlow: biflow}
		enc := NewBiFlowEncoder("enc", cfg, rng)
		s := dyngraph.NewSnapshot(7, 2)
		g := rand.New(rand.NewSource(12))
		for e := 0; e < 12; e++ {
			s.AddEdge(g.Intn(7), g.Intn(7))
		}
		for i := 0; i < 7; i++ {
			s.X.Set(i, 0, g.NormFloat64())
			s.X.Set(i, 1, g.NormFloat64())
		}
		tape := tensor.NewTape()
		taped := enc.Encode(nn.NewEvalCtx(tape), s)
		value := enc.EncodeValue(s)
		if !taped.Value.Equal(value, 1e-9) {
			t.Fatalf("biflow=%v: EncodeValue diverges from taped Encode", biflow)
		}
	}
}

func TestGATForwardMatchesTapedApply(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	g := NewGAT("gat", 5, 4, rng)
	states := tensor.Randn(6, 5, 1, rng)
	src := []int{0, 1, 2, 4}
	dst := []int{1, 2, 0, 5}
	tape := tensor.NewTape()
	taped := g.Apply(nn.NewEvalCtx(tape), tape.Const(states), src, dst, 6)
	value := g.Forward(states, src, dst, 6)
	if !taped.Value.Equal(value, 1e-9) {
		t.Fatal("GAT Forward diverges from taped Apply")
	}
}

func TestLinearForwardMatchesApply(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	l := nn.NewLinear("l", 3, 4, rng)
	x := tensor.Randn(5, 3, 1, rng)
	tape := tensor.NewTape()
	taped := l.Apply(nn.NewEvalCtx(tape), tape.Const(x))
	if !taped.Value.Equal(l.Forward(x), 1e-12) {
		t.Fatal("Linear Forward diverges")
	}
}

func TestMLPForwardMatchesApply(t *testing.T) {
	rng := rand.New(rand.NewSource(15))
	m := nn.NewMLP("m", []int{3, 6, 2}, nn.ActLeakyReLU, rng)
	m.OutAct = nn.ActSigmoid
	x := tensor.Randn(4, 3, 1, rng)
	tape := tensor.NewTape()
	taped := m.Apply(nn.NewEvalCtx(tape), tape.Const(x))
	if !taped.Value.Equal(m.Forward(x), 1e-12) {
		t.Fatal("MLP Forward diverges")
	}
}

func TestGRUForwardMatchesStep(t *testing.T) {
	rng := rand.New(rand.NewSource(16))
	g := nn.NewGRUCell("g", 4, 3, rng)
	x := tensor.Randn(5, 4, 1, rng)
	h := tensor.Randn(5, 3, 1, rng)
	tape := tensor.NewTape()
	c := nn.NewEvalCtx(tape)
	taped := g.Step(c, tape.Const(x), tape.Const(h))
	if !taped.Value.Equal(g.Forward(x, h), 1e-12) {
		t.Fatal("GRU Forward diverges from Step")
	}
}
