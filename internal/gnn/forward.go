package gnn

import (
	"math"

	"vrdag/internal/dyngraph"
	"vrdag/internal/tensor"
)

// Tape-free forward passes for generation (Algorithm 1). Equivalence with
// the taped versions is covered by tests. All intermediates are drawn from
// and returned to the pooled tensor arena; only the final representation
// escapes.

// EncodeValue runs the bi-flow encoder without recording gradients.
func (e *BiFlowEncoder) EncodeValue(s *dyngraph.Snapshot) *tensor.Matrix {
	adj := s.AdjCSR()
	adjT := s.AdjTCSR()
	feat := inputFeatures(s, e.cfg.InDim, e.cfg.BiFlow)
	h := e.inProj.Forward(feat)
	tensor.Put(feat)
	leakyInPlace(h)

	hops := make([]*tensor.Matrix, 0, e.cfg.Layers)
	for l := 0; l < e.cfg.Layers; l++ {
		var merged *tensor.Matrix
		if e.cfg.BiFlow {
			inAgg := adjT.MulDense(h)
			inAgg.Axpy(1+e.epsIn[l].Value.Data[0], h)
			inH := e.fIn[l].Forward(inAgg)
			tensor.Put(inAgg)
			outAgg := adj.MulDense(h)
			outAgg.Axpy(1+e.epsOut[l].Value.Data[0], h)
			outH := e.fOut[l].Forward(outAgg)
			tensor.Put(outAgg)
			both := concatCols(inH, outH)
			tensor.Put(inH)
			tensor.Put(outH)
			merged = e.fAgg.Forward(both)
			tensor.Put(both)
		} else {
			und := adj.MulDense(h)
			adjT.MulDenseInto(und, h)
			und.Axpy(1+e.epsIn[l].Value.Data[0], h)
			inH := e.fIn[l].Forward(und)
			tensor.Put(und)
			both := concatCols(inH, inH)
			tensor.Put(inH)
			merged = e.fAgg.Forward(both)
			tensor.Put(both)
		}
		if l == 0 {
			tensor.Put(h) // the projected input; later layers live on in hops
		}
		h = merged
		hops = append(hops, h)
	}
	var out *tensor.Matrix
	if len(hops) == 1 {
		out = e.fPool.Forward(hops[0])
	} else {
		jump := concatCols(hops...)
		out = e.fPool.Forward(jump)
		tensor.Put(jump)
	}
	for _, hop := range hops {
		tensor.Put(hop)
	}
	return out
}

// Forward runs the GAT layer without recording gradients.
func (g *GAT) Forward(states *tensor.Matrix, src, dst []int, n int) *tensor.Matrix {
	wh := g.W.Forward(states)
	es := make([]int, 0, len(src)+n)
	ed := make([]int, 0, len(dst)+n)
	es = append(es, src...)
	ed = append(ed, dst...)
	for v := 0; v < n; v++ {
		es = append(es, v)
		ed = append(ed, v)
	}
	e := len(es)
	d := wh.Cols
	// Per-edge scores aSrc·Wh_src + aDst·Wh_dst through LeakyReLU.
	score := make([]float64, e)
	for k := 0; k < e; k++ {
		s := g.attnSrc.B.Value.Data[0] + g.attnDst.B.Value.Data[0]
		rs, rd := wh.Row(es[k]), wh.Row(ed[k])
		for j := 0; j < d; j++ {
			s += g.attnSrc.W.Value.Data[j]*rs[j] + g.attnDst.W.Value.Data[j]*rd[j]
		}
		if s < 0 {
			s *= 0.2
		}
		score[k] = s
	}
	// Segment softmax over destinations.
	mx := make([]float64, n)
	for i := range mx {
		mx[i] = math.Inf(-1)
	}
	for k := 0; k < e; k++ {
		if score[k] > mx[ed[k]] {
			mx[ed[k]] = score[k]
		}
	}
	sum := make([]float64, n)
	for k := 0; k < e; k++ {
		score[k] = math.Exp(score[k] - mx[ed[k]])
		sum[ed[k]] += score[k]
	}
	out := tensor.Get(n, d)
	for k := 0; k < e; k++ {
		a := score[k] / sum[ed[k]]
		orow := out.Row(ed[k])
		srow := wh.Row(es[k])
		for j := 0; j < d; j++ {
			orow[j] += a * srow[j]
		}
	}
	tensor.Put(wh)
	return out
}

func leakyInPlace(m *tensor.Matrix) {
	tensor.VLeakyReLU(m.Data, 0.2)
}

func concatCols(parts ...*tensor.Matrix) *tensor.Matrix {
	rows := parts[0].Rows
	total := 0
	for _, p := range parts {
		total += p.Cols
	}
	out := tensor.Get(rows, total)
	off := 0
	for _, p := range parts {
		for i := 0; i < rows; i++ {
			copy(out.Row(i)[off:off+p.Cols], p.Row(i))
		}
		off += p.Cols
	}
	return out
}
