// Package gnn implements the graph neural layers of the paper: the
// bidirectional message-passing encoder of Eq. (5)-(7) (two directional GIN
// streams merged by a shared aggregation MLP with jump connections) and the
// graph attention layer of Eq. (12) used by the attribute decoder.
package gnn

import (
	"fmt"
	"math/rand"

	"vrdag/internal/dyngraph"
	"vrdag/internal/nn"
	"vrdag/internal/tensor"
)

// BiFlowConfig configures the bi-flow encoder.
type BiFlowConfig struct {
	InDim     int  // attribute dimension F (0 allowed: degree features are used)
	Hidden    int  // width of hop-level node states
	OutDim    int  // dε, dimensionality of ε(v)
	Layers    int  // L, number of message-passing layers
	MLPLayers int  // Lm, depth of the per-stream MLPs (>=1)
	BiFlow    bool // false collapses to a single undirected stream (ablation)
}

// BiFlowEncoder is the snapshot encoder ε. Each layer runs two GIN streams
// (in-flow and out-flow), concatenates them and applies a weight-shared
// aggregation MLP (Eq. 6). A jump connection pools all hop-level states
// into the final representation (Eq. 7).
type BiFlowEncoder struct {
	cfg    BiFlowConfig
	inProj *nn.Linear // input projection F (+2 degree feats) -> Hidden
	fIn    []*nn.MLP  // per-layer in-flow MLP f_in^(l)
	fOut   []*nn.MLP  // per-layer out-flow MLP f_out^(l)
	epsIn  []*nn.Param
	epsOut []*nn.Param
	fAgg   *nn.MLP // shared aggregation MLP (Eq. 6)
	fPool  *nn.MLP // jump-connection pooling MLP (Eq. 7)
}

// NewBiFlowEncoder constructs the encoder.
func NewBiFlowEncoder(name string, cfg BiFlowConfig, rng *rand.Rand) *BiFlowEncoder {
	if cfg.Layers < 1 {
		panic(fmt.Sprintf("gnn: encoder needs >=1 layer, got %d", cfg.Layers))
	}
	if cfg.MLPLayers < 1 {
		cfg.MLPLayers = 1
	}
	e := &BiFlowEncoder{cfg: cfg}
	// Raw input: attributes plus normalised in/out degree, so unattributed
	// graphs still carry structural signal.
	e.inProj = nn.NewLinear(name+".inproj", cfg.InDim+2, cfg.Hidden, rng)
	mlpSizes := func() []int {
		sizes := []int{cfg.Hidden}
		for i := 0; i < cfg.MLPLayers; i++ {
			sizes = append(sizes, cfg.Hidden)
		}
		return sizes
	}
	for l := 0; l < cfg.Layers; l++ {
		e.fIn = append(e.fIn, nn.NewMLP(fmt.Sprintf("%s.fin%d", name, l), mlpSizes(), nn.ActLeakyReLU, rng))
		e.fOut = append(e.fOut, nn.NewMLP(fmt.Sprintf("%s.fout%d", name, l), mlpSizes(), nn.ActLeakyReLU, rng))
		e.epsIn = append(e.epsIn, &nn.Param{Name: fmt.Sprintf("%s.epsin%d", name, l), Value: tensor.New(1, 1)})
		e.epsOut = append(e.epsOut, &nn.Param{Name: fmt.Sprintf("%s.epsout%d", name, l), Value: tensor.New(1, 1)})
	}
	e.fAgg = nn.NewMLP(name+".fagg", []int{2 * cfg.Hidden, cfg.Hidden}, nn.ActLeakyReLU, rng)
	e.fPool = nn.NewMLP(name+".fpool", []int{cfg.Layers * cfg.Hidden, cfg.OutDim}, nn.ActLeakyReLU, rng)
	return e
}

// Params implements nn.Module.
func (e *BiFlowEncoder) Params() []*nn.Param {
	var ps []*nn.Param
	ps = append(ps, e.inProj.Params()...)
	for l := range e.fIn {
		ps = append(ps, e.fIn[l].Params()...)
		ps = append(ps, e.fOut[l].Params()...)
		ps = append(ps, e.epsIn[l], e.epsOut[l])
	}
	ps = append(ps, e.fAgg.Params()...)
	ps = append(ps, e.fPool.Params()...)
	return ps
}

// OutDim returns dε.
func (e *BiFlowEncoder) OutDim() int { return e.cfg.OutDim }

// inputFeatures assembles [X || inDeg/max || outDeg/max] as a constant.
// When directed is false (the uni-flow ablation) both degree slots carry
// the direction-free total degree so the whole encoder is orientation
// invariant.
func inputFeatures(s *dyngraph.Snapshot, f int, directed bool) *tensor.Matrix {
	n := s.N
	feat := tensor.Get(n, f+2)
	maxDeg := 1.0
	for v := 0; v < n; v++ {
		if d := float64(s.InDegree(v) + s.OutDegree(v)); d > maxDeg {
			maxDeg = d
		}
	}
	for v := 0; v < n; v++ {
		row := feat.Row(v)
		if s.X != nil && f > 0 {
			copy(row[:f], s.X.Row(v))
		}
		if directed {
			row[f] = float64(s.InDegree(v)) / maxDeg
			row[f+1] = float64(s.OutDegree(v)) / maxDeg
		} else {
			d := float64(s.InDegree(v)+s.OutDegree(v)) / (2 * maxDeg)
			row[f] = d
			row[f+1] = d
		}
	}
	return feat
}

// broadcastScalar turns a 1×1 node into an N×1 column via row gathering.
func broadcastScalar(t *tensor.Tape, s *tensor.Node, n int) *tensor.Node {
	idx := make([]int, n)
	return t.GatherRows(s, idx)
}

// Encode runs the bi-flow encoder over a snapshot on the tape, returning
// the N×OutDim node representations ε(v, t).
func (e *BiFlowEncoder) Encode(c *nn.Ctx, s *dyngraph.Snapshot) *tensor.Node {
	t := c.Tape
	adj := s.AdjCSR()   // A·H sums out-neighbour states (cached on the snapshot)
	adjT := s.AdjTCSR() // Aᵀ·H sums in-neighbour states
	h := e.inProj.ApplyAct(c, t.Owned(inputFeatures(s, e.cfg.InDim, e.cfg.BiFlow)), nn.ActLeakyReLU)

	var hops []*tensor.Node
	for l := 0; l < e.cfg.Layers; l++ {
		var merged *tensor.Node
		if e.cfg.BiFlow {
			// Eq. (5): two directional GIN streams.
			selfIn := t.MulColVec(h, broadcastScalar(t, t.AddScalar(c.Var(e.epsIn[l]), 1), s.N))
			inH := e.fIn[l].Apply(c, t.Add(selfIn, t.SpMM(adjT, h)))
			selfOut := t.MulColVec(h, broadcastScalar(t, t.AddScalar(c.Var(e.epsOut[l]), 1), s.N))
			outH := e.fOut[l].Apply(c, t.Add(selfOut, t.SpMM(adj, h)))
			// Eq. (6): shared aggregation over the concatenated streams.
			merged = e.fAgg.Apply(c, t.ConcatCols(inH, outH))
		} else {
			// Ablation: single undirected stream (in+out neighbourhoods merged).
			selfIn := t.MulColVec(h, broadcastScalar(t, t.AddScalar(c.Var(e.epsIn[l]), 1), s.N))
			und := t.Add(t.SpMM(adj, h), t.SpMM(adjT, h))
			inH := e.fIn[l].Apply(c, t.Add(selfIn, und))
			merged = e.fAgg.Apply(c, t.ConcatCols(inH, inH))
		}
		h = merged
		hops = append(hops, h)
	}
	// Eq. (7): jump connection over hop-level states.
	if len(hops) == 1 {
		return e.fPool.Apply(c, hops[0])
	}
	return e.fPool.Apply(c, t.ConcatCols(hops...))
}

// GAT is a single-head graph attention layer (Veličković et al.), used by
// the attribute decoder to message-pass over the freshly generated topology
// (Eq. 12). Self-loops are always included so isolated nodes keep a state.
type GAT struct {
	W       *nn.Linear // in -> out
	attnSrc *nn.Linear // out -> 1
	attnDst *nn.Linear // out -> 1
}

// NewGAT creates the attention layer.
func NewGAT(name string, in, out int, rng *rand.Rand) *GAT {
	return &GAT{
		W:       nn.NewLinear(name+".W", in, out, rng),
		attnSrc: nn.NewLinear(name+".asrc", out, 1, rng),
		attnDst: nn.NewLinear(name+".adst", out, 1, rng),
	}
}

// Params implements nn.Module.
func (g *GAT) Params() []*nn.Param {
	var ps []*nn.Param
	ps = append(ps, g.W.Params()...)
	ps = append(ps, g.attnSrc.Params()...)
	ps = append(ps, g.attnDst.Params()...)
	return ps
}

// Apply runs attention aggregation of states over the directed edges
// (src[k] → dst[k]); each node also attends to itself.
func (g *GAT) Apply(c *nn.Ctx, states *tensor.Node, src, dst []int, n int) *tensor.Node {
	t := c.Tape
	wh := g.W.Apply(c, states) // N×out
	// Append self-loops.
	es := make([]int, 0, len(src)+n)
	ed := make([]int, 0, len(dst)+n)
	es = append(es, src...)
	ed = append(ed, dst...)
	for v := 0; v < n; v++ {
		es = append(es, v)
		ed = append(ed, v)
	}
	hSrc := t.GatherRows(wh, es) // E×out
	hDst := t.GatherRows(wh, ed)
	score := t.LeakyReLU(t.Add(g.attnSrc.Apply(c, hSrc), g.attnDst.Apply(c, hDst)), 0.2) // E×1
	alpha := t.SegmentSoftmax(score, ed, n)
	weighted := t.MulColVec(hSrc, alpha)
	return t.ScatterAddRows(weighted, ed, n)
}
