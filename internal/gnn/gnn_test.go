package gnn

import (
	"math"
	"math/rand"
	"testing"

	"vrdag/internal/dyngraph"
	"vrdag/internal/nn"
	"vrdag/internal/tensor"
)

func lineGraph(n, f int) *dyngraph.Snapshot {
	s := dyngraph.NewSnapshot(n, f)
	for i := 0; i+1 < n; i++ {
		s.AddEdge(i, i+1)
	}
	return s
}

func defaultCfg(f int) BiFlowConfig {
	return BiFlowConfig{InDim: f, Hidden: 8, OutDim: 6, Layers: 2, MLPLayers: 1, BiFlow: true}
}

func TestEncoderShapes(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	enc := NewBiFlowEncoder("enc", defaultCfg(3), rng)
	s := lineGraph(5, 3)
	tape := tensor.NewTape()
	c := nn.NewEvalCtx(tape)
	out := enc.Encode(c, s)
	if out.Value.Rows != 5 || out.Value.Cols != 6 {
		t.Fatalf("encoder output %dx%d", out.Value.Rows, out.Value.Cols)
	}
}

func TestEncoderHandlesUnattributedGraphs(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	enc := NewBiFlowEncoder("enc", defaultCfg(0), rng)
	s := lineGraph(4, 0)
	tape := tensor.NewTape()
	out := enc.Encode(nn.NewEvalCtx(tape), s)
	if out.Value.Rows != 4 {
		t.Fatal("unattributed encode failed")
	}
}

func TestEncoderDirectionSensitivity(t *testing.T) {
	// A bi-flow encoder must distinguish a node's representation when all
	// its edges flip direction; an undirected (ablation) encoder must not.
	rng := rand.New(rand.NewSource(3))
	cfg := defaultCfg(0)
	enc := NewBiFlowEncoder("enc", cfg, rng)

	fwd := dyngraph.NewSnapshot(3, 0)
	fwd.AddEdge(0, 1)
	fwd.AddEdge(0, 2)
	rev := dyngraph.NewSnapshot(3, 0)
	rev.AddEdge(1, 0)
	rev.AddEdge(2, 0)

	tape := tensor.NewTape()
	c := nn.NewEvalCtx(tape)
	a := enc.Encode(c, fwd)
	b := enc.Encode(c, rev)
	diff := 0.0
	for j := 0; j < a.Value.Cols; j++ {
		diff += math.Abs(a.Value.At(0, j) - b.Value.At(0, j))
	}
	if diff < 1e-6 {
		t.Fatal("bi-flow encoder must be direction-sensitive")
	}

	cfgU := cfg
	cfgU.BiFlow = false
	rngU := rand.New(rand.NewSource(3))
	encU := NewBiFlowEncoder("enc", cfgU, rngU)
	au := encU.Encode(c, fwd)
	bu := encU.Encode(c, rev)
	for j := 0; j < au.Value.Cols; j++ {
		if math.Abs(au.Value.At(0, j)-bu.Value.At(0, j)) > 1e-9 {
			t.Fatal("undirected ablation must be direction-insensitive")
		}
	}
}

func TestEncoderPermutationEquivariance(t *testing.T) {
	// Relabelling nodes must permute rows of the encoding identically.
	rng := rand.New(rand.NewSource(4))
	enc := NewBiFlowEncoder("enc", defaultCfg(2), rng)
	n := 6
	s := dyngraph.NewSnapshot(n, 2)
	edges := [][2]int{{0, 1}, {1, 2}, {2, 3}, {3, 0}, {4, 5}}
	for _, e := range edges {
		s.AddEdge(e[0], e[1])
	}
	attrRng := rand.New(rand.NewSource(5))
	for i := 0; i < n; i++ {
		s.X.Set(i, 0, attrRng.NormFloat64())
		s.X.Set(i, 1, attrRng.NormFloat64())
	}
	perm := []int{3, 0, 5, 1, 4, 2} // node i -> perm[i]
	sp := dyngraph.NewSnapshot(n, 2)
	for _, e := range edges {
		sp.AddEdge(perm[e[0]], perm[e[1]])
	}
	for i := 0; i < n; i++ {
		sp.X.Set(perm[i], 0, s.X.At(i, 0))
		sp.X.Set(perm[i], 1, s.X.At(i, 1))
	}
	tape := tensor.NewTape()
	c := nn.NewEvalCtx(tape)
	a := enc.Encode(c, s)
	b := enc.Encode(c, sp)
	for i := 0; i < n; i++ {
		for j := 0; j < a.Value.Cols; j++ {
			if math.Abs(a.Value.At(i, j)-b.Value.At(perm[i], j)) > 1e-9 {
				t.Fatalf("equivariance broken at node %d dim %d", i, j)
			}
		}
	}
}

func TestEncoderGradientsFlow(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	enc := NewBiFlowEncoder("enc", defaultCfg(2), rng)
	s := lineGraph(5, 2)
	for i := 0; i < 5; i++ {
		s.X.Set(i, 0, float64(i))
	}
	adam := nn.NewAdam(enc.Params(), 0.01)
	tape := tensor.NewTape()
	c := nn.NewTrainCtx(tape, adam)
	out := enc.Encode(c, s)
	loss := tape.MeanAll(tape.Mul(out, out))
	tape.Backward(loss)
	c.Flush()
	if adam.GradNorm() == 0 {
		t.Fatal("no gradient reached encoder parameters")
	}
	adam.Step()
}

func TestEncoderParamsCount(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	enc := NewBiFlowEncoder("enc", defaultCfg(2), rng)
	// inProj(2) + 2 layers × (fin(2) + fout(2) + 2 eps) + fagg(2) + fpool(2)
	want := 2 + 2*(2+2+2) + 2 + 2
	if got := len(enc.Params()); got != want {
		t.Fatalf("Params len = %d, want %d", got, want)
	}
}

func TestGATShapesAndSelfLoop(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	g := NewGAT("gat", 4, 3, rng)
	tape := tensor.NewTape()
	c := nn.NewEvalCtx(tape)
	states := tape.Const(tensor.Randn(5, 4, 1, rng))
	// no edges at all: self-loops must still produce nonzero output
	out := g.Apply(c, states, nil, nil, 5)
	if out.Value.Rows != 5 || out.Value.Cols != 3 {
		t.Fatalf("GAT output %dx%d", out.Value.Rows, out.Value.Cols)
	}
	nonzero := false
	for _, v := range out.Value.Data {
		if v != 0 {
			nonzero = true
		}
	}
	if !nonzero {
		t.Fatal("GAT with self-loops must produce nonzero states")
	}
}

func TestGATAttentionNormalised(t *testing.T) {
	// With identical source states, attention-weighted output equals the
	// transformed state itself (weights sum to one).
	rng := rand.New(rand.NewSource(9))
	g := NewGAT("gat", 2, 2, rng)
	tape := tensor.NewTape()
	c := nn.NewEvalCtx(tape)
	st := tensor.New(4, 2)
	for i := 0; i < 4; i++ {
		st.Set(i, 0, 1)
		st.Set(i, 1, -1)
	}
	states := tape.Const(st)
	src := []int{1, 2, 3}
	dst := []int{0, 0, 0}
	out := g.Apply(c, states, src, dst, 4)
	// Node 0 aggregates {1,2,3,self}, all with the same W·h: output = W·h.
	wh := tensor.MatMul(st, g.W.W.Value)
	for j := 0; j < 2; j++ {
		if math.Abs(out.Value.At(0, j)-(wh.At(0, j)+g.W.B.Value.Data[j])) > 1e-9 {
			t.Fatalf("attention over identical states should average to the state, got %v", out.Value.Row(0))
		}
	}
}

func TestGATGradientsFlow(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	g := NewGAT("gat", 3, 3, rng)
	adam := nn.NewAdam(g.Params(), 0.01)
	tape := tensor.NewTape()
	c := nn.NewTrainCtx(tape, adam)
	states := tape.Var(tensor.Randn(4, 3, 1, rng))
	out := g.Apply(c, states, []int{0, 1}, []int{1, 2}, 4)
	tape.Backward(tape.MeanAll(tape.Mul(out, out)))
	c.Flush()
	if adam.GradNorm() == 0 {
		t.Fatal("no gradient reached GAT parameters")
	}
	if states.Grad == nil {
		t.Fatal("no gradient reached input states")
	}
}
