package datasets

import (
	"math"
	"testing"

	"vrdag/internal/metrics"
)

func TestAllReplicasGenerateAtSmallScale(t *testing.T) {
	for _, name := range AllNames() {
		g, cfg, err := Replica(name, 0.02, 1)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if err := g.Validate(); err != nil {
			t.Fatalf("%s: invalid sequence: %v", name, err)
		}
		if g.T() != cfg.T {
			t.Fatalf("%s: T=%d, want %d", name, g.T(), cfg.T)
		}
		if g.F != cfg.F {
			t.Fatalf("%s: F=%d, want %d", name, g.F, cfg.F)
		}
		if g.TotalTemporalEdges() == 0 {
			t.Fatalf("%s: no edges generated", name)
		}
	}
}

func TestUnknownReplica(t *testing.T) {
	if _, _, err := Replica("nope", 1, 1); err == nil {
		t.Fatal("unknown dataset must error")
	}
}

func TestReplicaDeterminism(t *testing.T) {
	a, _, _ := Replica(Email, 0.05, 42)
	b, _, _ := Replica(Email, 0.05, 42)
	if a.TotalTemporalEdges() != b.TotalTemporalEdges() {
		t.Fatal("same seed must generate identical sequences")
	}
	for tt := range a.Snapshots {
		sa, sb := a.At(tt), b.At(tt)
		for u := 0; u < sa.N; u++ {
			for _, v := range sa.Out[u] {
				if !sb.HasEdge(u, v) {
					t.Fatalf("t=%d edge %d->%d missing in re-run", tt, u, v)
				}
			}
		}
		if sa.X != nil && !sa.X.Equal(sb.X, 0) {
			t.Fatalf("t=%d attributes differ", tt)
		}
	}
	c, _, _ := Replica(Email, 0.05, 43)
	if c.TotalTemporalEdges() == a.TotalTemporalEdges() &&
		func() bool {
			for tt := range a.Snapshots {
				if a.At(tt).NumEdges() != c.At(tt).NumEdges() {
					return false
				}
			}
			return true
		}() {
		t.Fatal("different seeds should almost surely differ")
	}
}

func TestFullScaleMatchesTableIStatistics(t *testing.T) {
	if testing.Short() {
		t.Skip("full-scale replica generation in -short mode")
	}
	want := map[string]struct{ n, m int }{
		Email:     {1891, 39264},
		Bitcoin:   {3783, 24186},
		Guarantee: {5530, 6169},
	}
	for name, w := range want {
		g, _, err := Replica(name, 1, 7)
		if err != nil {
			t.Fatal(err)
		}
		if g.N != w.n {
			t.Fatalf("%s: N=%d, want %d", name, g.N, w.n)
		}
		m := g.TotalTemporalEdges()
		// Persistence and reciprocity make M stochastic; require the right
		// order of magnitude (within 2x).
		if float64(m) < float64(w.m)/2 || float64(m) > float64(w.m)*2 {
			t.Fatalf("%s: M=%d, want ≈%d", name, m, w.m)
		}
	}
}

func TestReplicaHeavyTailedDegrees(t *testing.T) {
	g, _, _ := Replica(Wiki, 0.05, 3)
	last := g.At(g.T() - 1)
	deg := metrics.TotalDegrees(last)
	// Heavy tail: max degree far above mean degree.
	mean, mx := 0.0, 0.0
	for _, d := range deg {
		mean += d
		if d > mx {
			mx = d
		}
	}
	mean /= float64(len(deg))
	if mx < mean*5 {
		t.Fatalf("degree tail too light: max=%g mean=%g", mx, mean)
	}
}

func TestReplicaTemporalPersistence(t *testing.T) {
	g, cfg, _ := Replica(Guarantee, 0.05, 4)
	// A replica with persistence must share edges between consecutive
	// snapshots well above chance.
	shared, total := 0, 0
	for tt := 1; tt < g.T(); tt++ {
		prev, cur := g.At(tt-1), g.At(tt)
		for u := 0; u < g.N; u++ {
			for _, v := range prev.Out[u] {
				total++
				if cur.HasEdge(u, v) {
					shared++
				}
			}
		}
	}
	if total == 0 {
		t.Skip("no edges to check")
	}
	frac := float64(shared) / float64(total)
	if frac < cfg.Persistence/2 {
		t.Fatalf("persistence too low: %g (configured %g)", frac, cfg.Persistence)
	}
}

func TestReplicaAttributesCoEvolve(t *testing.T) {
	g, _, _ := Replica(Email, 0.1, 5)
	last := g.At(g.T() - 1)
	deg := metrics.TotalDegrees(last)
	attr0 := make([]float64, g.N)
	for i := 0; i < g.N; i++ {
		attr0[i] = last.X.At(i, 0)
	}
	// Attribute dimension 0 is driven by degree; correlation must be
	// clearly positive.
	if rho := metrics.Spearman(deg, attr0); rho < 0.1 {
		t.Fatalf("attributes not coupled to structure: spearman=%g", rho)
	}
}

func TestReplicaAttributeCorrelationControl(t *testing.T) {
	// Email configures correlated attribute innovations; Bitcoin has one
	// attribute and no correlation machinery. Verify Email's two
	// attributes correlate.
	g, _, _ := Replica(Email, 0.1, 6)
	rows := metrics.AttributeRows(g)
	m := metrics.SpearmanMatrix(rows)
	if math.Abs(m[0][1]) < 0.3 {
		t.Fatalf("expected correlated attributes, got rho=%g", m[0][1])
	}
}

func TestGenerateDirectDefaultsApplied(t *testing.T) {
	g := Generate(Config{N: 20, T: 3, F: 1, EdgesPerStep: 30, Seed: 9})
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if g.TotalTemporalEdges() == 0 {
		t.Fatal("no edges with defaults")
	}
}

func TestDescribe(t *testing.T) {
	g, _, _ := Replica(Email, 0.02, 10)
	s := Describe("email", g)
	if s.N != g.N || s.M != g.TotalTemporalEdges() || s.T != g.T() || s.F != g.F {
		t.Fatalf("Describe mismatch: %+v", s)
	}
}
