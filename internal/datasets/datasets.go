// Package datasets produces seeded synthetic replicas of the six dynamic
// attributed graphs used in the paper's evaluation (Table I): Emails-DNC,
// Bitcoin-Alpha, Wiki-Vote, Guarantee, Brain, and GDELT.
//
// The real datasets are not redistributable (the module is offline and the
// Guarantee network is proprietary bank data), so each replica is generated
// by a configurable process that matches the published statistics — node
// count N, temporal edge count M, attribute dimension X, and sequence
// length T — and the qualitative character the paper's model is designed
// to exploit:
//
//   - heavy-tailed in/out-degree distributions via preferential attachment
//     on per-node activity weights;
//   - community structure (block-biased destination choice);
//   - temporal edge persistence and burstiness;
//   - directed reciprocity;
//   - *co-evolving* node attributes: attributes follow an AR(1) process
//     driven by node degree and activity, and attribute similarity feeds
//     back into destination choice (homophily), reproducing the
//     structure↔attribute coupling of Section III-C.
//
// All generation is deterministic given Config.Seed.
package datasets

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"vrdag/internal/dyngraph"
)

// Config parameterises the synthetic dynamic-attributed-graph process.
type Config struct {
	Name string

	N int // nodes
	T int // timesteps
	F int // attribute dimensions

	EdgesPerStep  int     // mean new-edge budget per snapshot
	Activity      float64 // Zipf exponent of per-node activity weights (≈1 heavy tail)
	Communities   int     // number of latent communities (>=1)
	Homophily     float64 // prob. of intra-community destination choice
	AttrHomophily float64 // prob. of attribute-similarity destination choice
	Persistence   float64 // prob. an edge from step t-1 persists at t
	Reciprocity   float64 // prob. an added edge also adds its reverse
	Burstiness    float64 // lognormal σ of the per-step activity multiplier

	AttrAR       float64 // AR(1) coefficient of the attribute process
	AttrCoupling float64 // weight of the degree/activity drive on attributes
	AttrNoise    float64 // innovation noise σ
	AttrCorr     float64 // cross-dimension correlation of innovations

	Seed int64
}

func (c Config) withDefaults() Config {
	if c.Communities < 1 {
		c.Communities = 1
	}
	if c.Activity == 0 {
		c.Activity = 0.9
	}
	if c.Persistence == 0 {
		c.Persistence = 0.3
	}
	if c.AttrAR == 0 {
		c.AttrAR = 0.85
	}
	if c.AttrNoise == 0 {
		c.AttrNoise = 0.15
	}
	if c.AttrCoupling == 0 {
		c.AttrCoupling = 0.3
	}
	return c
}

// Generate produces the dynamic attributed graph described by cfg.
func Generate(cfg Config) *dyngraph.Sequence {
	cfg = cfg.withDefaults()
	rng := rand.New(rand.NewSource(cfg.Seed))
	g := dyngraph.NewSequence(cfg.N, cfg.F, cfg.T)

	// Static per-node activity weights: Zipf over a random permutation so
	// hub identity is seed-dependent, not index-dependent.
	perm := rng.Perm(cfg.N)
	weight := make([]float64, cfg.N)
	for r, v := range perm {
		weight[v] = math.Pow(float64(r+1), -cfg.Activity)
	}
	community := make([]int, cfg.N)
	for v := range community {
		community[v] = rng.Intn(cfg.Communities)
	}
	// Cumulative weights per community and global, for O(log N) sampling.
	globalCum, globalNodes := cumulative(weight, nil)
	commCum := make([][]float64, cfg.Communities)
	commNodes := make([][]int, cfg.Communities)
	for cIdx := 0; cIdx < cfg.Communities; cIdx++ {
		members := []int{}
		for v := 0; v < cfg.N; v++ {
			if community[v] == cIdx {
				members = append(members, v)
			}
		}
		w := make([]float64, len(members))
		for i, v := range members {
			w[i] = weight[v]
		}
		commCum[cIdx], commNodes[cIdx] = cumulative(w, members)
	}

	// Attribute state: per-node latent style vector plus AR(1) dynamics.
	attr := make([][]float64, cfg.N)
	style := make([][]float64, cfg.N)
	for v := 0; v < cfg.N; v++ {
		attr[v] = make([]float64, cfg.F)
		style[v] = make([]float64, cfg.F)
		for j := 0; j < cfg.F; j++ {
			base := float64(community[v])/math.Max(1, float64(cfg.Communities-1)) - 0.5
			style[v][j] = base + 0.5*rng.NormFloat64()
			attr[v][j] = style[v][j]
		}
	}

	var prev *dyngraph.Snapshot
	for t := 0; t < cfg.T; t++ {
		s := g.At(t)

		// Edge persistence from the previous snapshot.
		if prev != nil && cfg.Persistence > 0 {
			for u := 0; u < cfg.N; u++ {
				for _, v := range prev.Out[u] {
					if rng.Float64() < cfg.Persistence {
						s.AddEdge(u, v)
					}
				}
			}
		}

		// New edges under a bursty budget.
		budget := float64(cfg.EdgesPerStep)
		if cfg.Burstiness > 0 {
			budget *= math.Exp(cfg.Burstiness*rng.NormFloat64() - cfg.Burstiness*cfg.Burstiness/2)
		}
		for e := 0; e < int(budget); e++ {
			u := sampleCum(globalCum, globalNodes, rng)
			v := pickDestination(u, community, commCum, commNodes, globalCum, globalNodes, attr, cfg, rng)
			if u == v {
				continue
			}
			s.AddEdge(u, v)
			if cfg.Reciprocity > 0 && rng.Float64() < cfg.Reciprocity {
				s.AddEdge(v, u)
			}
		}

		// Attribute co-evolution: AR(1) pulled toward the node's style,
		// driven by current structural prominence.
		if cfg.F > 0 {
			maxDeg := 1.0
			for v := 0; v < cfg.N; v++ {
				if d := float64(s.OutDegree(v) + s.InDegree(v)); d > maxDeg {
					maxDeg = d
				}
			}
			for v := 0; v < cfg.N; v++ {
				drive := float64(s.OutDegree(v)+s.InDegree(v)) / maxDeg
				shared := rng.NormFloat64() // correlated innovation component
				row := s.X.Row(v)
				for j := 0; j < cfg.F; j++ {
					noise := cfg.AttrCorr*shared + (1-cfg.AttrCorr)*rng.NormFloat64()
					attr[v][j] = cfg.AttrAR*attr[v][j] +
						(1-cfg.AttrAR)*style[v][j] +
						cfg.AttrCoupling*drive +
						cfg.AttrNoise*noise
					row[j] = attr[v][j]
				}
			}
		}

		prev = s
	}
	return g
}

// pickDestination selects a destination node for source u, mixing
// community homophily, attribute homophily, and global preferential
// attachment.
func pickDestination(u int, community []int, commCum [][]float64, commNodes [][]int,
	globalCum []float64, globalNodes []int, attr [][]float64, cfg Config, rng *rand.Rand) int {

	r := rng.Float64()
	if r < cfg.AttrHomophily && cfg.F > 0 {
		// Attribute homophily: pick a few random nodes, keep the one with
		// the closest attribute vector (cheap nearest-of-k).
		best, bestD := -1, math.Inf(1)
		for k := 0; k < 5; k++ {
			v := sampleCum(globalCum, globalNodes, rng)
			if v == u {
				continue
			}
			d := 0.0
			for j := range attr[u] {
				diff := attr[u][j] - attr[v][j]
				d += diff * diff
			}
			if d < bestD {
				best, bestD = v, d
			}
		}
		if best >= 0 {
			return best
		}
	}
	if r < cfg.AttrHomophily+cfg.Homophily && cfg.Communities > 1 {
		c := community[u]
		if len(commNodes[c]) > 1 {
			return sampleCum(commCum[c], commNodes[c], rng)
		}
	}
	return sampleCum(globalCum, globalNodes, rng)
}

// cumulative builds a prefix-sum table over weights; nodes defaults to
// identity when nil.
func cumulative(w []float64, nodes []int) ([]float64, []int) {
	cum := make([]float64, len(w)+1)
	for i, v := range w {
		cum[i+1] = cum[i] + v
	}
	if nodes == nil {
		nodes = make([]int, len(w))
		for i := range nodes {
			nodes[i] = i
		}
	}
	return cum, nodes
}

func sampleCum(cum []float64, nodes []int, rng *rand.Rand) int {
	total := cum[len(cum)-1]
	if total <= 0 {
		return nodes[rng.Intn(len(nodes))]
	}
	u := rng.Float64() * total
	i := sort.SearchFloat64s(cum[1:], u)
	if i >= len(nodes) {
		i = len(nodes) - 1
	}
	return nodes[i]
}

// Name constants for the six replicas.
const (
	Email     = "email"
	Bitcoin   = "bitcoin"
	Wiki      = "wiki"
	Guarantee = "guarantee"
	Brain     = "brain"
	GDELT     = "gdelt"
)

// AllNames lists the six dataset replicas in the paper's Table-I order.
func AllNames() []string {
	return []string{Email, Bitcoin, Wiki, Guarantee, Brain, GDELT}
}

// replicaConfig returns the full-size configuration for a named dataset,
// matching Table I statistics (N, M = EdgesPerStep·T approximately, X, T).
func replicaConfig(name string) (Config, error) {
	switch name {
	case Email:
		// 1,891 nodes, 39,264 temporal edges, 2 attrs, 14 steps.
		return Config{Name: name, N: 1891, T: 14, F: 2,
			EdgesPerStep: 2300, Activity: 1.0, Communities: 8, Homophily: 0.5,
			AttrHomophily: 0.15, Persistence: 0.25, Reciprocity: 0.25,
			Burstiness: 0.4, AttrCorr: 0.5}, nil
	case Bitcoin:
		// 3,783 nodes, 24,186 temporal edges, 1 attr (rating), 37 steps.
		return Config{Name: name, N: 3783, T: 37, F: 1,
			EdgesPerStep: 520, Activity: 0.95, Communities: 12, Homophily: 0.35,
			AttrHomophily: 0.1, Persistence: 0.2, Reciprocity: 0.35,
			Burstiness: 0.3, AttrCorr: 0}, nil
	case Wiki:
		// 7,115 nodes, 103,689 temporal edges, 1 attr, 43 steps.
		return Config{Name: name, N: 7115, T: 43, F: 1,
			EdgesPerStep: 1950, Activity: 1.05, Communities: 20, Homophily: 0.3,
			AttrHomophily: 0.05, Persistence: 0.15, Reciprocity: 0.1,
			Burstiness: 0.35, AttrCorr: 0}, nil
	case Guarantee:
		// 5,530 nodes, 6,169 temporal edges, 2 attrs, 15 steps. Sparse
		// guaranteed-loan network: strong persistence, low reciprocity
		// (guarantor → borrower flows are one-directional).
		return Config{Name: name, N: 5530, T: 15, F: 2,
			EdgesPerStep: 280, Activity: 0.8, Communities: 40, Homophily: 0.6,
			AttrHomophily: 0.2, Persistence: 0.45, Reciprocity: 0.02,
			Burstiness: 0.25, AttrCorr: 0.6}, nil
	case Brain:
		// 5,000 nodes, 529,093 temporal edges, 20 attrs, 12 steps. Dense
		// functional-connectivity graph with strongly correlated attributes.
		return Config{Name: name, N: 5000, T: 12, F: 20,
			EdgesPerStep: 33000, Activity: 0.6, Communities: 10, Homophily: 0.7,
			AttrHomophily: 0.2, Persistence: 0.35, Reciprocity: 0.5,
			Burstiness: 0.2, AttrCorr: 0.7}, nil
	case GDELT:
		// 5,037 nodes, 566,735 temporal edges, 10 attrs, 18 steps. Dense
		// event graph with bursty international-relations dynamics.
		return Config{Name: name, N: 5037, T: 18, F: 10,
			EdgesPerStep: 24500, Activity: 0.85, Communities: 15, Homophily: 0.45,
			AttrHomophily: 0.1, Persistence: 0.25, Reciprocity: 0.3,
			Burstiness: 0.5, AttrCorr: 0.4}, nil
	default:
		return Config{}, fmt.Errorf("datasets: unknown dataset %q (want one of %v)", name, AllNames())
	}
}

// Replica generates a named dataset replica at the given scale factor.
// scale = 1 reproduces the Table-I statistics; smaller scales shrink N and
// the per-step edge budget proportionally (T and F are preserved) so unit
// tests and CI-speed benchmarks stay fast. Scale values are clamped to
// keep at least 16 nodes.
func Replica(name string, scale float64, seed int64) (*dyngraph.Sequence, Config, error) {
	cfg, err := replicaConfig(name)
	if err != nil {
		return nil, Config{}, err
	}
	if scale <= 0 {
		scale = 1
	}
	cfg.Seed = seed
	if scale != 1 {
		cfg.N = int(float64(cfg.N) * scale)
		if cfg.N < 16 {
			cfg.N = 16
		}
		cfg.EdgesPerStep = int(float64(cfg.EdgesPerStep) * scale)
		if cfg.EdgesPerStep < 8 {
			cfg.EdgesPerStep = 8
		}
	}
	return Generate(cfg), cfg, nil
}

// Stats summarises a sequence (used by CLIs and experiment logs).
type Stats struct {
	Name string
	N    int
	M    int // total temporal edges
	F    int
	T    int
}

// Describe computes summary statistics for a sequence.
func Describe(name string, g *dyngraph.Sequence) Stats {
	return Stats{Name: name, N: g.N, M: g.TotalTemporalEdges(), F: g.F, T: g.T()}
}
