package datasets

import "testing"

// BenchmarkReplicaGeneration measures the synthetic dataset process at a
// mid scale (the substrate cost underneath every experiment).
func BenchmarkReplicaGeneration(b *testing.B) {
	for _, name := range []string{Email, Guarantee, GDELT} {
		name := name
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, _, err := Replica(name, 0.1, int64(i)); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
