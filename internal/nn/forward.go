package nn

import (
	"math"

	"vrdag/internal/tensor"
)

// This file provides tape-free forward passes for inference. Generation
// (Algorithm 1) never needs gradients, and skipping the tape removes all
// bookkeeping allocations from the hot path. Outputs come from the pooled
// arena (tensor.Get) and layer intermediates are returned to it with
// tensor.Put, so a warm server generates with near-zero garbage.
// Equivalence with the taped versions is covered by tests.

// Forward computes x·W + b without recording gradients. The result is
// pool-allocated; callers that discard it should tensor.Put it.
func (l *Linear) Forward(x *tensor.Matrix) *tensor.Matrix {
	out := tensor.Get(x.Rows, l.Out)
	tensor.MatMulInto(out, x, l.W.Value)
	out.AddRowVecInPlace(l.B.Value)
	return out
}

func applyActValueInPlace(m *tensor.Matrix, a Activation) {
	switch a {
	case ActReLU:
		// Stays math.Max rather than tensor.VReLU: Max(0, -0) = +0 while
		// the blend kernel keeps -0, and the taped forward this must match
		// bit-for-bit uses Max.
		m.ApplyInPlace(func(v float64) float64 { return math.Max(0, v) })
	case ActLeakyReLU:
		tensor.VLeakyReLU(m.Data, 0.2)
	case ActTanh:
		tensor.VTanh(m.Data)
	case ActSigmoid:
		tensor.VSigmoid(m.Data)
	}
}

// Forward runs the MLP without recording gradients. Hidden-layer
// intermediates go back to the arena; only the returned matrix survives.
func (m *MLP) Forward(x *tensor.Matrix) *tensor.Matrix {
	cur := x
	for i, l := range m.Layers {
		nxt := l.Forward(cur)
		if i+1 < len(m.Layers) {
			applyActValueInPlace(nxt, m.Hidden)
		} else {
			applyActValueInPlace(nxt, m.OutAct)
		}
		if cur != x {
			tensor.Put(cur)
		}
		cur = nxt
	}
	return cur
}

// Forward computes one GRU update without recording gradients. All gate
// buffers are recycled; the returned state is pool-allocated.
func (g *GRUCell) Forward(x, h *tensor.Matrix) *tensor.Matrix {
	gate := func(w, u, b *Param, act Activation) *tensor.Matrix {
		out := tensor.Get(x.Rows, g.HiddenDim)
		tensor.MatMulInto(out, x, w.Value)
		tensor.MatMulInto(out, h, u.Value)
		out.AddRowVecInPlace(b.Value)
		applyActValueInPlace(out, act)
		return out
	}
	z := gate(g.Wz, g.Uz, g.Bz, ActSigmoid)
	r := gate(g.Wr, g.Ur, g.Br, ActSigmoid)
	// r ⊙ h reuses the r buffer; r is not needed afterwards.
	for i := range r.Data {
		r.Data[i] *= h.Data[i]
	}
	ht := tensor.Get(x.Rows, g.HiddenDim)
	tensor.MatMulInto(ht, x, g.Wh.Value)
	tensor.MatMulInto(ht, r, g.Uh.Value)
	ht.AddRowVecInPlace(g.Bh.Value)
	tensor.VTanh(ht.Data)
	out := tensor.Get(h.Rows, h.Cols)
	for i, hv := range h.Data {
		out.Data[i] = hv + z.Data[i]*(ht.Data[i]-hv)
	}
	tensor.Put(z)
	tensor.Put(r)
	tensor.Put(ht)
	return out
}
