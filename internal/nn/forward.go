package nn

import (
	"math"

	"vrdag/internal/tensor"
)

// This file provides tape-free forward passes for inference. Generation
// (Algorithm 1) never needs gradients, and skipping the tape removes all
// bookkeeping allocations from the hot path. Equivalence with the taped
// versions is covered by tests.

// Forward computes x·W + b without recording gradients.
func (l *Linear) Forward(x *tensor.Matrix) *tensor.Matrix {
	out := tensor.MatMul(x, l.W.Value)
	for i := 0; i < out.Rows; i++ {
		row := out.Row(i)
		for j, b := range l.B.Value.Data {
			row[j] += b
		}
	}
	return out
}

func applyActValue(m *tensor.Matrix, a Activation) *tensor.Matrix {
	switch a {
	case ActReLU:
		return m.Apply(func(v float64) float64 { return math.Max(0, v) })
	case ActLeakyReLU:
		return m.Apply(func(v float64) float64 {
			if v > 0 {
				return v
			}
			return 0.2 * v
		})
	case ActTanh:
		return m.Apply(math.Tanh)
	case ActSigmoid:
		return m.Apply(tensor.Sigmoid)
	default:
		return m
	}
}

// Forward runs the MLP without recording gradients.
func (m *MLP) Forward(x *tensor.Matrix) *tensor.Matrix {
	for i, l := range m.Layers {
		x = l.Forward(x)
		if i+1 < len(m.Layers) {
			x = applyActValue(x, m.Hidden)
		} else {
			x = applyActValue(x, m.OutAct)
		}
	}
	return x
}

// Forward computes one GRU update without recording gradients.
func (g *GRUCell) Forward(x, h *tensor.Matrix) *tensor.Matrix {
	lin := func(w, u *Param, b *Param) *tensor.Matrix {
		out := tensor.MatMul(x, w.Value)
		out.AddInPlace(tensor.MatMul(h, u.Value))
		for i := 0; i < out.Rows; i++ {
			row := out.Row(i)
			for j, bv := range b.Value.Data {
				row[j] += bv
			}
		}
		return out
	}
	z := lin(g.Wz, g.Uz, g.Bz).Apply(tensor.Sigmoid)
	r := lin(g.Wr, g.Ur, g.Br).Apply(tensor.Sigmoid)
	rh := h.Clone()
	for i := range rh.Data {
		rh.Data[i] *= r.Data[i]
	}
	ht := tensor.MatMul(x, g.Wh.Value)
	ht.AddInPlace(tensor.MatMul(rh, g.Uh.Value))
	for i := 0; i < ht.Rows; i++ {
		row := ht.Row(i)
		for j, bv := range g.Bh.Value.Data {
			row[j] += bv
		}
	}
	ht = ht.Apply(math.Tanh)
	out := h.Clone()
	for i := range out.Data {
		out.Data[i] += z.Data[i] * (ht.Data[i] - out.Data[i])
	}
	return out
}
