package nn

import (
	"math"

	"vrdag/internal/tensor"
)

// Adam implements the Adam optimizer with optional global-norm gradient
// clipping. Gradients are read from the tape nodes captured during the
// forward pass via a GradSource.
type Adam struct {
	LR      float64
	Beta1   float64
	Beta2   float64
	Eps     float64
	Clip    float64 // max global gradient norm; 0 disables clipping
	t       int
	params  []*Param
	grads   []*tensor.Matrix // external gradient buffers, parallel to params
	binding map[*Param]int
}

// NewAdam creates an optimizer over the given parameters with sensible
// defaults (β1=0.9, β2=0.999, ε=1e-8).
func NewAdam(params []*Param, lr float64) *Adam {
	a := &Adam{
		LR: lr, Beta1: 0.9, Beta2: 0.999, Eps: 1e-8, Clip: 5,
		params:  params,
		grads:   make([]*tensor.Matrix, len(params)),
		binding: make(map[*Param]int, len(params)),
	}
	for i, p := range params {
		a.grads[i] = tensor.New(p.Value.Rows, p.Value.Cols)
		a.binding[p] = i
		p.m = tensor.New(p.Value.Rows, p.Value.Cols)
		p.v = tensor.New(p.Value.Rows, p.Value.Cols)
	}
	return a
}

// ZeroGrads clears the accumulated gradient buffers.
func (a *Adam) ZeroGrads() {
	for _, g := range a.grads {
		g.Zero()
	}
}

// Accumulate adds the gradient captured on a tape node into the buffer of
// its parameter. Typical usage: after Tape.Backward, call Accumulate for
// each (param, node) pair that was bound with Tape.Var.
func (a *Adam) Accumulate(p *Param, grad *tensor.Matrix) {
	i, ok := a.binding[p]
	if !ok {
		panic("nn: Accumulate on unknown parameter " + p.Name)
	}
	if grad != nil {
		a.grads[i].AddInPlace(grad)
	}
}

// GradNorm returns the current global gradient L2 norm.
func (a *Adam) GradNorm() float64 {
	s := 0.0
	for _, g := range a.grads {
		for _, v := range g.Data {
			s += v * v
		}
	}
	return math.Sqrt(s)
}

// Step applies one Adam update using the accumulated gradients, then
// clears them. Returns the (pre-clip) global gradient norm.
func (a *Adam) Step() float64 {
	a.t++
	norm := a.GradNorm()
	scale := 1.0
	if a.Clip > 0 && norm > a.Clip {
		scale = a.Clip / (norm + 1e-12)
	}
	bc1 := 1 - math.Pow(a.Beta1, float64(a.t))
	bc2 := 1 - math.Pow(a.Beta2, float64(a.t))
	for i, p := range a.params {
		g := a.grads[i]
		for j := range p.Value.Data {
			gj := g.Data[j] * scale
			p.m.Data[j] = a.Beta1*p.m.Data[j] + (1-a.Beta1)*gj
			p.v.Data[j] = a.Beta2*p.v.Data[j] + (1-a.Beta2)*gj*gj
			mHat := p.m.Data[j] / bc1
			vHat := p.v.Data[j] / bc2
			p.Value.Data[j] -= a.LR * mHat / (math.Sqrt(vHat) + a.Eps)
		}
	}
	a.ZeroGrads()
	return norm
}

// Ctx carries the tape through a forward pass and tracks the tape nodes
// created for each parameter so their gradients can be routed into the
// optimizer afterwards. An eval context (adam == nil) records parameters
// as constants, skipping gradient bookkeeping entirely.
type Ctx struct {
	Tape  *tensor.Tape
	adam  *Adam
	nodes map[*Param][]*tensor.Node
}

// NewTrainCtx creates a context that tracks parameter gradients for adam.
func NewTrainCtx(tape *tensor.Tape, adam *Adam) *Ctx {
	return &Ctx{Tape: tape, adam: adam, nodes: make(map[*Param][]*tensor.Node)}
}

// NewEvalCtx creates an inference context: parameters become constants.
func NewEvalCtx(tape *tensor.Tape) *Ctx {
	return &Ctx{Tape: tape}
}

// Training reports whether this context tracks gradients.
func (c *Ctx) Training() bool { return c.adam != nil }

// Var returns a tape node for parameter p. In training contexts the node
// is differentiable and remembered for Flush; in eval contexts it is a
// constant.
func (c *Ctx) Var(p *Param) *tensor.Node {
	if c.adam == nil {
		return c.Tape.Const(p.Value)
	}
	n := c.Tape.Var(p.Value)
	c.nodes[p] = append(c.nodes[p], n)
	return n
}

// Flush moves all captured node gradients into the optimizer buffers.
// Call after Tape.Backward and before Adam.Step.
func (c *Ctx) Flush() {
	if c.adam == nil {
		return
	}
	for p, ns := range c.nodes {
		for _, n := range ns {
			if n.Grad != nil {
				c.adam.Accumulate(p, n.Grad)
			}
		}
	}
	c.nodes = make(map[*Param][]*tensor.Node)
}
