package nn

import (
	"math"

	"vrdag/internal/tensor"
)

// GradSink receives parameter gradients flushed from a forward/backward
// pass. *Adam accumulates them straight into the optimizer buffers (the
// sequential training path); *GradBuffer collects them privately so
// concurrent workers can each own a sink and merge deterministically
// afterwards.
type GradSink interface {
	Accumulate(p *Param, grad *tensor.Matrix)
}

// Adam implements the Adam optimizer with optional global-norm gradient
// clipping. Gradients are read from the tape nodes captured during the
// forward pass via a GradSource.
type Adam struct {
	LR      float64
	Beta1   float64
	Beta2   float64
	Eps     float64
	Clip    float64 // max global gradient norm; 0 disables clipping
	t       int
	params  []*Param
	grads   []*tensor.Matrix // external gradient buffers, parallel to params
	binding map[*Param]int
}

// NewAdam creates an optimizer over the given parameters with sensible
// defaults (β1=0.9, β2=0.999, ε=1e-8).
func NewAdam(params []*Param, lr float64) *Adam {
	a := &Adam{
		LR: lr, Beta1: 0.9, Beta2: 0.999, Eps: 1e-8, Clip: 5,
		params:  params,
		grads:   make([]*tensor.Matrix, len(params)),
		binding: make(map[*Param]int, len(params)),
	}
	for i, p := range params {
		a.grads[i] = tensor.New(p.Value.Rows, p.Value.Cols)
		a.binding[p] = i
		p.m = tensor.New(p.Value.Rows, p.Value.Cols)
		p.v = tensor.New(p.Value.Rows, p.Value.Cols)
	}
	return a
}

// ZeroGrads clears the accumulated gradient buffers.
func (a *Adam) ZeroGrads() {
	for _, g := range a.grads {
		g.Zero()
	}
}

// Accumulate adds the gradient captured on a tape node into the buffer of
// its parameter. Typical usage: after Tape.Backward, call Accumulate for
// each (param, node) pair that was bound with Tape.Var.
func (a *Adam) Accumulate(p *Param, grad *tensor.Matrix) {
	i, ok := a.binding[p]
	if !ok {
		panic("nn: Accumulate on unknown parameter " + p.Name)
	}
	if grad != nil {
		a.grads[i].AddInPlace(grad)
	}
}

// GradBuffer is a detached gradient accumulator over the same parameter
// set as its parent Adam. Window-parallel training gives every in-flight
// window its own buffer: workers flush into it without synchronisation,
// and the engine merges the buffers into the optimizer in deterministic
// window order with Adam.AddFrom, so the summed gradient — and therefore
// every weight byte after Step — is independent of the worker count.
//
// Buffers are lazily drawn from the pooled tensor arena (a window usually
// touches every parameter, but a cancelled one may touch none) and must be
// returned with Release.
type GradBuffer struct {
	adam  *Adam
	grads []*tensor.Matrix // lazily pooled, parallel to adam.params
}

// NewGradBuffer creates an empty gradient accumulator bound to a's
// parameter set.
func (a *Adam) NewGradBuffer() *GradBuffer {
	return &GradBuffer{adam: a, grads: make([]*tensor.Matrix, len(a.params))}
}

// Accumulate implements GradSink: it adds grad into the buffer's private
// slot for p. Unlike Adam.Accumulate it never touches optimizer state, so
// concurrent GradBuffers are independent.
func (b *GradBuffer) Accumulate(p *Param, grad *tensor.Matrix) {
	i, ok := b.adam.binding[p]
	if !ok {
		panic("nn: Accumulate on unknown parameter " + p.Name)
	}
	if grad == nil {
		return
	}
	if b.grads[i] == nil {
		b.grads[i] = tensor.Get(p.Value.Rows, p.Value.Cols)
	}
	b.grads[i].AddInPlace(grad)
}

// Release returns every pooled gradient matrix to the arena. The buffer
// is reusable afterwards (it reverts to the empty state).
func (b *GradBuffer) Release() {
	for i, g := range b.grads {
		if g != nil {
			tensor.Put(g)
			b.grads[i] = nil
		}
	}
}

// AddFrom folds a worker's gradient buffer into the optimizer's
// accumulated gradients. Call once per buffer, in a deterministic order
// (window order for the parallel trainer), then Step exactly as in the
// sequential path.
func (a *Adam) AddFrom(b *GradBuffer) {
	if b.adam != a {
		panic("nn: AddFrom with a GradBuffer bound to a different optimizer")
	}
	for i, g := range b.grads {
		if g != nil {
			a.grads[i].AddInPlace(g)
		}
	}
}

// GradNorm returns the current global gradient L2 norm.
func (a *Adam) GradNorm() float64 {
	s := 0.0
	for _, g := range a.grads {
		for _, v := range g.Data {
			s += v * v
		}
	}
	return math.Sqrt(s)
}

// Step applies one Adam update using the accumulated gradients, then
// clears them. Returns the (pre-clip) global gradient norm.
func (a *Adam) Step() float64 {
	a.t++
	norm := a.GradNorm()
	scale := 1.0
	if a.Clip > 0 && norm > a.Clip {
		scale = a.Clip / (norm + 1e-12)
	}
	bc1 := 1 - math.Pow(a.Beta1, float64(a.t))
	bc2 := 1 - math.Pow(a.Beta2, float64(a.t))
	for i, p := range a.params {
		g := a.grads[i]
		for j := range p.Value.Data {
			gj := g.Data[j] * scale
			p.m.Data[j] = a.Beta1*p.m.Data[j] + (1-a.Beta1)*gj
			p.v.Data[j] = a.Beta2*p.v.Data[j] + (1-a.Beta2)*gj*gj
			mHat := p.m.Data[j] / bc1
			vHat := p.v.Data[j] / bc2
			p.Value.Data[j] -= a.LR * mHat / (math.Sqrt(vHat) + a.Eps)
		}
	}
	a.ZeroGrads()
	return norm
}

// Ctx carries the tape through a forward pass and tracks the tape nodes
// created for each parameter so their gradients can be routed into the
// sink afterwards. An eval context (sink == nil) records parameters as
// constants, skipping gradient bookkeeping entirely.
type Ctx struct {
	Tape  *tensor.Tape
	sink  GradSink
	nodes map[*Param][]*tensor.Node
}

// NewTrainCtx creates a context that tracks parameter gradients for adam.
func NewTrainCtx(tape *tensor.Tape, adam *Adam) *Ctx {
	if adam == nil { // avoid a typed-nil sink masquerading as a training ctx
		return NewEvalCtx(tape)
	}
	return NewSinkCtx(tape, adam)
}

// NewSinkCtx creates a training context whose Flush delivers gradients to
// an arbitrary sink — a detached GradBuffer for window-parallel workers,
// or the optimizer itself (equivalent to NewTrainCtx).
func NewSinkCtx(tape *tensor.Tape, sink GradSink) *Ctx {
	return &Ctx{Tape: tape, sink: sink, nodes: make(map[*Param][]*tensor.Node)}
}

// NewEvalCtx creates an inference context: parameters become constants.
func NewEvalCtx(tape *tensor.Tape) *Ctx {
	return &Ctx{Tape: tape}
}

// Training reports whether this context tracks gradients.
func (c *Ctx) Training() bool { return c.sink != nil }

// Var returns a tape node for parameter p. In training contexts the node
// is differentiable and remembered for Flush; in eval contexts it is a
// constant.
func (c *Ctx) Var(p *Param) *tensor.Node {
	if c.sink == nil {
		return c.Tape.Const(p.Value)
	}
	n := c.Tape.Var(p.Value)
	c.nodes[p] = append(c.nodes[p], n)
	return n
}

// Flush moves all captured node gradients into the sink. Call after
// Tape.Backward and before the gradients are consumed (Adam.Step for the
// sequential path, Adam.AddFrom for buffered workers). Under the
// lifetime-scheduled executor each gradient buffer is returned to the
// arena as soon as it has been accumulated — Var grads are the one class
// of buffer the scheduled Backward cannot release itself, because Flush
// reads them after the sweep finishes.
func (c *Ctx) Flush() {
	if c.sink == nil {
		return
	}
	release := c.Tape.Sched().Lifetime
	for p, ns := range c.nodes {
		for _, n := range ns {
			if n.Grad != nil {
				c.sink.Accumulate(p, n.Grad)
				if release {
					c.Tape.ReleaseGrad(n)
				}
			}
		}
	}
	c.nodes = make(map[*Param][]*tensor.Node)
}
