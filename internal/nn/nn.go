// Package nn provides neural-network building blocks on top of the tensor
// autodiff engine: linear layers, multi-layer perceptrons, a GRU cell, the
// Time2Vec temporal embedding, parameter collection, and the Adam optimizer.
package nn

import (
	"fmt"
	"math"
	"math/rand"

	"vrdag/internal/tensor"
)

// Param is a named trainable matrix together with its Adam state.
type Param struct {
	Name  string
	Value *tensor.Matrix
	m, v  *tensor.Matrix // Adam first/second moments
}

// Module is anything exposing trainable parameters.
type Module interface {
	Params() []*Param
}

// CollectParams flattens the parameters of several modules.
func CollectParams(mods ...Module) []*Param {
	var out []*Param
	for _, m := range mods {
		out = append(out, m.Params()...)
	}
	return out
}

// NumParams returns the total scalar parameter count across modules.
func NumParams(mods ...Module) int {
	n := 0
	for _, p := range CollectParams(mods...) {
		n += len(p.Value.Data)
	}
	return n
}

// xavier returns the Glorot-uniform bound for a fanIn×fanOut weight.
func xavier(fanIn, fanOut int) float64 {
	return math.Sqrt(6.0 / float64(fanIn+fanOut))
}

// Linear is a fully connected layer y = xW + b.
type Linear struct {
	W, B *Param
	In   int
	Out  int
}

// NewLinear creates a Glorot-initialised linear layer.
func NewLinear(name string, in, out int, rng *rand.Rand) *Linear {
	bound := xavier(in, out)
	return &Linear{
		W:   &Param{Name: name + ".W", Value: tensor.RandUniform(in, out, -bound, bound, rng)},
		B:   &Param{Name: name + ".b", Value: tensor.New(1, out)},
		In:  in,
		Out: out,
	}
}

// Params implements Module.
func (l *Linear) Params() []*Param { return []*Param{l.W, l.B} }

// Apply computes x·W + b on the tape as a single fused node.
func (l *Linear) Apply(c *Ctx, x *tensor.Node) *tensor.Node {
	return c.Tape.Affine(x, c.Var(l.W), c.Var(l.B), tensor.ActIdent)
}

// ApplyAct computes act(x·W + b) on the tape with the activation fused
// into the affine node, avoiding the intermediate pre-activation matrix.
func (l *Linear) ApplyAct(c *Ctx, x *tensor.Node, act Activation) *tensor.Node {
	return c.Tape.Affine(x, c.Var(l.W), c.Var(l.B), fusedAct(act))
}

// Activation selects the nonlinearity used between MLP layers.
type Activation int

// Supported activations.
const (
	ActNone Activation = iota
	ActReLU
	ActLeakyReLU
	ActTanh
	ActSigmoid
)

func applyAct(t *tensor.Tape, x *tensor.Node, a Activation) *tensor.Node {
	switch a {
	case ActReLU:
		return t.ReLU(x)
	case ActLeakyReLU:
		return t.LeakyReLU(x, 0.2)
	case ActTanh:
		return t.Tanh(x)
	case ActSigmoid:
		return t.Sigmoid(x)
	default:
		return x
	}
}

// fusedAct maps an Activation onto the tensor package's fusable set.
// ActLeakyReLU relies on both packages using slope 0.2.
func fusedAct(a Activation) tensor.Act {
	switch a {
	case ActReLU:
		return tensor.ActReLU
	case ActLeakyReLU:
		return tensor.ActLeakyReLU
	case ActTanh:
		return tensor.ActTanh
	case ActSigmoid:
		return tensor.ActSigmoid
	default:
		return tensor.ActIdent
	}
}

// MLP is a stack of linear layers with a shared hidden activation. The
// output layer applies OutAct (ActNone by default).
type MLP struct {
	Layers []*Linear
	Hidden Activation
	OutAct Activation
}

// NewMLP builds an MLP with the given layer sizes, e.g. sizes = [in, h, out].
func NewMLP(name string, sizes []int, hidden Activation, rng *rand.Rand) *MLP {
	if len(sizes) < 2 {
		panic(fmt.Sprintf("nn: NewMLP needs >=2 sizes, got %v", sizes))
	}
	m := &MLP{Hidden: hidden}
	for i := 0; i+1 < len(sizes); i++ {
		m.Layers = append(m.Layers, NewLinear(fmt.Sprintf("%s.l%d", name, i), sizes[i], sizes[i+1], rng))
	}
	return m
}

// Params implements Module.
func (m *MLP) Params() []*Param {
	var out []*Param
	for _, l := range m.Layers {
		out = append(out, l.Params()...)
	}
	return out
}

// Apply runs the MLP forward on the tape, one fused affine+activation
// node per layer.
func (m *MLP) Apply(c *Ctx, x *tensor.Node) *tensor.Node {
	for i, l := range m.Layers {
		if i+1 < len(m.Layers) {
			x = l.ApplyAct(c, x, m.Hidden)
		} else {
			x = l.ApplyAct(c, x, m.OutAct)
		}
	}
	return x
}

// GRUCell is a standard gated recurrent unit operating on row-batched
// states: given input X (N×in) and hidden H (N×hidden) it returns the
// updated hidden state (N×hidden).
type GRUCell struct {
	Wz, Wr, Wh *Param // in×hidden
	Uz, Ur, Uh *Param // hidden×hidden
	Bz, Br, Bh *Param // 1×hidden
	InDim      int
	HiddenDim  int
}

// NewGRUCell creates a Glorot-initialised GRU cell.
func NewGRUCell(name string, in, hidden int, rng *rand.Rand) *GRUCell {
	w := func(suffix string, r, c int) *Param {
		bound := xavier(r, c)
		return &Param{Name: name + "." + suffix, Value: tensor.RandUniform(r, c, -bound, bound, rng)}
	}
	b := func(suffix string) *Param {
		return &Param{Name: name + "." + suffix, Value: tensor.New(1, hidden)}
	}
	return &GRUCell{
		Wz: w("Wz", in, hidden), Wr: w("Wr", in, hidden), Wh: w("Wh", in, hidden),
		Uz: w("Uz", hidden, hidden), Ur: w("Ur", hidden, hidden), Uh: w("Uh", hidden, hidden),
		Bz: b("bz"), Br: b("br"), Bh: b("bh"),
		InDim: in, HiddenDim: hidden,
	}
}

// Params implements Module.
func (g *GRUCell) Params() []*Param {
	return []*Param{g.Wz, g.Wr, g.Wh, g.Uz, g.Ur, g.Uh, g.Bz, g.Br, g.Bh}
}

// Step computes one GRU update on the tape. Each gate is a single fused
// Affine2 node (x·W + h·U + b with the activation folded in), and the
// state blend h' = (1-z)⊙h + z⊙h̃ is one Lerp node — five nodes per step
// instead of nineteen in the unfused form.
func (g *GRUCell) Step(c *Ctx, x, h *tensor.Node) *tensor.Node {
	t := c.Tape
	z := t.Affine2(x, c.Var(g.Wz), h, c.Var(g.Uz), c.Var(g.Bz), tensor.ActSigmoid)
	r := t.Affine2(x, c.Var(g.Wr), h, c.Var(g.Ur), c.Var(g.Br), tensor.ActSigmoid)
	hTilde := t.Affine2(x, c.Var(g.Wh), t.Mul(r, h), c.Var(g.Uh), c.Var(g.Bh), tensor.ActTanh)
	return t.Lerp(h, hTilde, z)
}

// Time2Vec implements the temporal embedding of Kazemi et al. (Eq. 13):
// the first component is linear in t, the rest are sin(w_r t + φ_r).
type Time2Vec struct {
	W, Phi *Param // 1×dim each
	Dim    int
}

// NewTime2Vec creates a Time2Vec embedding of the given dimensionality.
func NewTime2Vec(name string, dim int, rng *rand.Rand) *Time2Vec {
	return &Time2Vec{
		W:   &Param{Name: name + ".w", Value: tensor.RandUniform(1, dim, -1, 1, rng)},
		Phi: &Param{Name: name + ".phi", Value: tensor.RandUniform(1, dim, -math.Pi, math.Pi, rng)},
		Dim: dim,
	}
}

// Params implements Module.
func (tv *Time2Vec) Params() []*Param { return []*Param{tv.W, tv.Phi} }

// Encode returns fT(t) as a 1×dim tape node; in training contexts the
// gradients flow into W and Phi. Component 0 is linear in t, the others
// are sin(w_r t + φ_r) per Eq. (13).
func (tv *Time2Vec) Encode(c *Ctx, tt float64) *tensor.Node {
	t := c.Tape
	w := c.Var(tv.W)
	phi := c.Var(tv.Phi)
	// arg = w*t + phi
	arg := t.Add(t.Scale(w, tt), phi)
	// Split: component 0 is linear, components 1..dim-1 pass through sin.
	if tv.Dim == 1 {
		return arg
	}
	lin := t.SliceCols(arg, 0, 1)
	per := t.SliceCols(arg, 1, tv.Dim)
	return t.ConcatCols(lin, t.Sin(per))
}

// EncodeValue returns fT(t) as a plain matrix without recording gradients
// (used during inference).
func (tv *Time2Vec) EncodeValue(tt float64) *tensor.Matrix {
	out := tensor.New(1, tv.Dim)
	for j := 0; j < tv.Dim; j++ {
		a := tv.W.Value.Data[j]*tt + tv.Phi.Value.Data[j]
		if j == 0 {
			out.Data[j] = a
		} else {
			out.Data[j] = math.Sin(a)
		}
	}
	return out
}
