package nn

import (
	"math"
	"math/rand"
	"testing"

	"vrdag/internal/tensor"
)

func TestLinearShapesAndDeterminism(t *testing.T) {
	l1 := NewLinear("l", 4, 3, rand.New(rand.NewSource(1)))
	l2 := NewLinear("l", 4, 3, rand.New(rand.NewSource(1)))
	if !l1.W.Value.Equal(l2.W.Value, 0) {
		t.Fatal("same seed must produce identical init")
	}
	tape := tensor.NewTape()
	c := NewEvalCtx(tape)
	x := tape.Const(tensor.Randn(5, 4, 1, rand.New(rand.NewSource(2))))
	y := l1.Apply(c, x)
	if y.Value.Rows != 5 || y.Value.Cols != 3 {
		t.Fatalf("Linear output shape %dx%d", y.Value.Rows, y.Value.Cols)
	}
}

func TestMLPParamsCount(t *testing.T) {
	m := NewMLP("m", []int{4, 8, 2}, ActReLU, rand.New(rand.NewSource(1)))
	want := 4*8 + 8 + 8*2 + 2
	if got := NumParams(m); got != want {
		t.Fatalf("NumParams = %d, want %d", got, want)
	}
	if len(m.Params()) != 4 {
		t.Fatalf("expected 4 param tensors, got %d", len(m.Params()))
	}
}

func TestMLPRejectsTooFewSizes(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewMLP("m", []int{4}, ActReLU, rand.New(rand.NewSource(1)))
}

func TestGRUStepShapeAndBounds(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	g := NewGRUCell("gru", 6, 4, rng)
	tape := tensor.NewTape()
	c := NewEvalCtx(tape)
	x := tape.Const(tensor.Randn(7, 6, 1, rng))
	h := tape.Const(tensor.Randn(7, 4, 0.5, rng))
	h2 := g.Step(c, x, h)
	if h2.Value.Rows != 7 || h2.Value.Cols != 4 {
		t.Fatalf("GRU output shape %dx%d", h2.Value.Rows, h2.Value.Cols)
	}
	// h' is a convex combination of h and tanh(·) ∈ (-1,1), so it must be
	// bounded by max(|h|, 1).
	bound := math.Max(h.Value.MaxAbs(), 1) + 1e-9
	if h2.Value.MaxAbs() > bound {
		t.Fatalf("GRU state out of bounds: %g > %g", h2.Value.MaxAbs(), bound)
	}
}

func TestGRUZeroInputKeepsFiniteState(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	g := NewGRUCell("gru", 3, 3, rng)
	tape := tensor.NewTape()
	c := NewEvalCtx(tape)
	h := tape.Const(tensor.New(2, 3))
	x := tape.Const(tensor.New(2, 3))
	for i := 0; i < 50; i++ {
		h = g.Step(c, x, h)
	}
	for _, v := range h.Value.Data {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			t.Fatal("GRU diverged on zero input")
		}
	}
}

func TestTime2VecFirstComponentLinear(t *testing.T) {
	tv := NewTime2Vec("t2v", 5, rand.New(rand.NewSource(5)))
	v1 := tv.EncodeValue(1)
	v2 := tv.EncodeValue(2)
	v3 := tv.EncodeValue(3)
	// linear component: v2-v1 == v3-v2
	if math.Abs((v2.Data[0]-v1.Data[0])-(v3.Data[0]-v2.Data[0])) > 1e-9 {
		t.Fatal("component 0 must be linear in t")
	}
	// periodic components bounded by 1
	for j := 1; j < 5; j++ {
		if math.Abs(v1.Data[j]) > 1 {
			t.Fatalf("sin component %d out of range: %g", j, v1.Data[j])
		}
	}
}

func TestTime2VecEncodeMatchesEncodeValue(t *testing.T) {
	tv := NewTime2Vec("t2v", 4, rand.New(rand.NewSource(6)))
	tape := tensor.NewTape()
	c := NewEvalCtx(tape)
	n := tv.Encode(c, 2.5)
	m := tv.EncodeValue(2.5)
	if !n.Value.Equal(m, 1e-12) {
		t.Fatalf("Encode %v != EncodeValue %v", n.Value, m)
	}
}

// Train a small MLP on XOR via the full Ctx/Adam pipeline; loss must drop.
func TestAdamLearnsXOR(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	mlp := NewMLP("xor", []int{2, 8, 1}, ActTanh, rng)
	adam := NewAdam(mlp.Params(), 0.05)

	x := tensor.FromRows([][]float64{{0, 0}, {0, 1}, {1, 0}, {1, 1}})
	y := tensor.FromRows([][]float64{{0}, {1}, {1}, {0}})

	var first, last float64
	for epoch := 0; epoch < 300; epoch++ {
		tape := tensor.NewTape()
		c := NewTrainCtx(tape, adam)
		out := mlp.Apply(c, tape.Const(x))
		loss := tape.BCEWithLogits(out, y)
		tape.Backward(loss)
		c.Flush()
		adam.Step()
		if epoch == 0 {
			first = loss.Value.Data[0]
		}
		last = loss.Value.Data[0]
	}
	if last > first/4 {
		t.Fatalf("XOR training failed: first=%g last=%g", first, last)
	}
	// check predictions
	tape := tensor.NewTape()
	c := NewEvalCtx(tape)
	out := tape.Sigmoid(mlp.Apply(c, tape.Const(x)))
	for i := 0; i < 4; i++ {
		pred := out.Value.Data[i] > 0.5
		want := y.Data[i] > 0.5
		if pred != want {
			t.Fatalf("XOR row %d misclassified: %g", i, out.Value.Data[i])
		}
	}
}

func TestAdamGradClipping(t *testing.T) {
	p := &Param{Name: "p", Value: tensor.FromSlice(1, 2, []float64{0, 0})}
	adam := NewAdam([]*Param{p}, 0.1)
	adam.Clip = 1
	huge := tensor.FromSlice(1, 2, []float64{1e6, 1e6})
	adam.Accumulate(p, huge)
	norm := adam.Step()
	if norm < 1e5 {
		t.Fatalf("returned norm should be pre-clip, got %g", norm)
	}
	// With clipping the step magnitude is bounded by lr (Adam normalises).
	for _, v := range p.Value.Data {
		if math.Abs(v) > 0.11 {
			t.Fatalf("clipped update too large: %g", v)
		}
	}
}

func TestAdamZeroGradNoChangeAfterStepReset(t *testing.T) {
	p := &Param{Name: "p", Value: tensor.FromSlice(1, 1, []float64{1})}
	adam := NewAdam([]*Param{p}, 0.1)
	adam.Accumulate(p, tensor.FromSlice(1, 1, []float64{1}))
	adam.ZeroGrads()
	if adam.GradNorm() != 0 {
		t.Fatal("ZeroGrads must clear buffers")
	}
}

func TestAdamAccumulateUnknownParamPanics(t *testing.T) {
	adam := NewAdam(nil, 0.1)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	adam.Accumulate(&Param{Name: "ghost", Value: tensor.New(1, 1)}, tensor.New(1, 1))
}

func TestEvalCtxTracksNoGradients(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	l := NewLinear("l", 2, 2, rng)
	tape := tensor.NewTape()
	c := NewEvalCtx(tape)
	if c.Training() {
		t.Fatal("eval ctx should not be training")
	}
	x := tape.Var(tensor.Randn(3, 2, 1, rng))
	y := l.Apply(c, x)
	tape.Backward(tape.SumAll(y))
	// x gets gradients, parameters don't (they were recorded as consts).
	if x.Grad == nil {
		t.Fatal("input grad missing")
	}
	c.Flush() // must be a no-op, not panic
}

func TestCtxFlushAccumulatesSharedParam(t *testing.T) {
	// A parameter used twice must receive the sum of both gradient paths.
	p := &Param{Name: "w", Value: tensor.FromSlice(1, 1, []float64{2})}
	adam := NewAdam([]*Param{p}, 0.1)
	tape := tensor.NewTape()
	c := NewTrainCtx(tape, adam)
	a := c.Var(p)
	b := c.Var(p)
	loss := tape.SumAll(tape.Mul(a, b)) // d/dw (w²) = 2w = 4
	tape.Backward(loss)
	c.Flush()
	if got := adam.GradNorm(); math.Abs(got-4) > 1e-9 {
		t.Fatalf("accumulated grad = %g, want 4", got)
	}
}

func TestGradBufferMatchesDirectAccumulation(t *testing.T) {
	// Routing gradients through a detached GradBuffer and merging with
	// AddFrom must be bit-identical to flushing straight into the optimizer.
	build := func() (*Adam, []*Param) {
		rng := rand.New(rand.NewSource(31))
		l := NewLinear("l", 3, 2, rng)
		return NewAdam(l.Params(), 0.1), l.Params()
	}
	run := func(adam *Adam, sink GradSink, params []*Param) {
		tape := tensor.NewTape()
		c := NewSinkCtx(tape, sink)
		x := tensor.FromSlice(2, 3, []float64{1, 2, 3, 4, 5, 6})
		out := tape.Affine(tape.Const(x), c.Var(params[0]), c.Var(params[1]), tensor.ActTanh)
		tape.Backward(tape.MeanAll(tape.Mul(out, out)))
		c.Flush()
	}

	direct, dp := build()
	run(direct, direct, dp)

	buffered, bp := build()
	gb := buffered.NewGradBuffer()
	run(buffered, gb, bp)
	buffered.AddFrom(gb)
	gb.Release()

	for i := range direct.grads {
		if !direct.grads[i].Equal(buffered.grads[i], 0) {
			t.Fatalf("param %d: buffered gradient differs from direct accumulation", i)
		}
	}
}

func TestGradBufferReleaseBalancesArena(t *testing.T) {
	rng := rand.New(rand.NewSource(33))
	l := NewLinear("l", 4, 4, rng)
	adam := NewAdam(l.Params(), 0.1)
	grad := tensor.FromSlice(4, 4, make([]float64, 16))

	gb := adam.NewGradBuffer()
	gb.Accumulate(l.W, grad)
	gb.Release() // warm the arena so the measured round is steady-state

	before := tensor.ReadPoolStats()
	gb.Accumulate(l.W, grad)
	gb.Accumulate(l.W, grad) // second hit reuses the lazily-allocated slot
	gb.Release()
	after := tensor.ReadPoolStats()
	if gets, puts := after.Gets-before.Gets, after.Puts-before.Puts; gets != puts {
		t.Fatalf("GradBuffer leaked arena buffers: %d gets vs %d puts", gets, puts)
	}
	gb.Release() // idempotent on an empty buffer
}

func TestGradBufferForeignOptimizerPanics(t *testing.T) {
	rng := rand.New(rand.NewSource(35))
	a := NewAdam(NewLinear("a", 2, 2, rng).Params(), 0.1)
	b := NewAdam(NewLinear("b", 2, 2, rng).Params(), 0.1)
	defer func() {
		if recover() == nil {
			t.Fatal("AddFrom accepted a buffer bound to another optimizer")
		}
	}()
	a.AddFrom(b.NewGradBuffer())
}

func TestCollectParamsFlattens(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	a := NewLinear("a", 2, 2, rng)
	b := NewGRUCell("b", 2, 2, rng)
	got := CollectParams(a, b)
	if len(got) != 2+9 {
		t.Fatalf("CollectParams returned %d tensors", len(got))
	}
}
