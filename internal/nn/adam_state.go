package nn

import (
	"fmt"
	"sort"
)

// AdamMoments is one parameter's optimizer state: the first and second
// moment estimates, flattened row-major. Exported fields make the struct
// gob-encodable for training checkpoints.
type AdamMoments struct {
	Name string
	M    []float64
	V    []float64
}

// AdamState is a serializable snapshot of an optimizer: the step counter
// and every parameter's moments, name-sorted so encoding is byte
// deterministic. Pending (un-Stepped) gradient accumulations are NOT part
// of the state — capture it only at a step boundary, where they are zero.
type AdamState struct {
	T       int
	Moments []AdamMoments
}

// State captures the optimizer's step counter and per-parameter moments.
// The returned slices are copies; mutating them does not touch the
// optimizer.
func (a *Adam) State() AdamState {
	st := AdamState{T: a.t, Moments: make([]AdamMoments, 0, len(a.params))}
	for _, p := range a.params {
		st.Moments = append(st.Moments, AdamMoments{
			Name: p.Name,
			M:    append([]float64(nil), p.m.Data...),
			V:    append([]float64(nil), p.v.Data...),
		})
	}
	sort.Slice(st.Moments, func(i, j int) bool { return st.Moments[i].Name < st.Moments[j].Name })
	return st
}

// Restore overwrites the optimizer's step counter and moments from a
// captured state. Every optimizer parameter must appear in st with
// matching element count; parameter values themselves are restored
// separately (core.Load handles model weights).
func (a *Adam) Restore(st AdamState) error {
	byName := make(map[string]*AdamMoments, len(st.Moments))
	for i := range st.Moments {
		m := &st.Moments[i]
		if _, dup := byName[m.Name]; dup {
			return fmt.Errorf("nn: Adam state has duplicate parameter %q", m.Name)
		}
		byName[m.Name] = m
	}
	for _, p := range a.params {
		m, ok := byName[p.Name]
		if !ok {
			return fmt.Errorf("nn: Adam state is missing parameter %q", p.Name)
		}
		if len(m.M) != len(p.m.Data) || len(m.V) != len(p.v.Data) {
			return fmt.Errorf("nn: Adam state for %q has %d/%d moment elements, want %d", p.Name, len(m.M), len(m.V), len(p.m.Data))
		}
	}
	if len(byName) != len(a.params) {
		return fmt.Errorf("nn: Adam state has %d parameters, optimizer has %d", len(byName), len(a.params))
	}
	for _, p := range a.params {
		m := byName[p.Name]
		copy(p.m.Data, m.M)
		copy(p.v.Data, m.V)
	}
	a.t = st.T
	return nil
}
