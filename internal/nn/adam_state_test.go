package nn

import (
	"math"
	"testing"

	"vrdag/internal/tensor"
)

func adamFixture(seed float64) (*Adam, []*Param) {
	params := []*Param{
		{Name: "w", Value: tensor.FromSlice(2, 2, []float64{seed, 2, 3, 4})},
		{Name: "b", Value: tensor.FromSlice(1, 2, []float64{0.5, -0.5})},
	}
	return NewAdam(params, 1e-2), params
}

func stepOnce(a *Adam, params []*Param, scale float64) {
	for _, p := range params {
		g := tensor.New(p.Value.Rows, p.Value.Cols)
		for i := range g.Data {
			g.Data[i] = scale * float64(i+1)
		}
		a.Accumulate(p, g)
	}
	a.Step()
}

// TestAdamStateRestoreResumesExactly pins the checkpoint contract: an
// optimizer restored from State() produces bit-identical parameter bytes
// on every subsequent step, including the bias-correction schedule driven
// by the step counter.
func TestAdamStateRestoreResumesExactly(t *testing.T) {
	ref, refParams := adamFixture(1)
	for i := 0; i < 3; i++ {
		stepOnce(ref, refParams, 0.1*float64(i+1))
	}
	saved := ref.State()
	savedVals := make([][]float64, len(refParams))
	for i, p := range refParams {
		savedVals[i] = append([]float64(nil), p.Value.Data...)
	}

	// Fresh optimizer, parameter values forced to the checkpointed bytes,
	// moments and step counter restored.
	res, resParams := adamFixture(1)
	for i, p := range resParams {
		copy(p.Value.Data, savedVals[i])
	}
	if err := res.Restore(saved); err != nil {
		t.Fatalf("Restore: %v", err)
	}

	for i := 0; i < 4; i++ {
		stepOnce(ref, refParams, 0.07*float64(i+1))
		stepOnce(res, resParams, 0.07*float64(i+1))
	}
	for i := range refParams {
		for j := range refParams[i].Value.Data {
			a, b := refParams[i].Value.Data[j], resParams[i].Value.Data[j]
			if math.Float64bits(a) != math.Float64bits(b) {
				t.Fatalf("param %q[%d]: restored run diverged, %v vs %v", refParams[i].Name, j, b, a)
			}
		}
	}
}

func TestAdamStateIsNameSortedCopy(t *testing.T) {
	a, params := adamFixture(1)
	stepOnce(a, params, 1)
	st := a.State()
	if len(st.Moments) != 2 || st.Moments[0].Name != "b" || st.Moments[1].Name != "w" {
		t.Fatalf("moments not name-sorted: %v, %v", st.Moments[0].Name, st.Moments[1].Name)
	}
	// Mutating the captured state must not touch the optimizer.
	st.Moments[0].M[0] = 1e9
	st2 := a.State()
	if st2.Moments[0].M[0] == 1e9 {
		t.Fatal("State returned aliased moment memory")
	}
}

func TestAdamRestoreRejectsMismatch(t *testing.T) {
	a, _ := adamFixture(1)
	if err := a.Restore(AdamState{T: 1}); err == nil {
		t.Fatal("restored from an empty state")
	}
	st := a.State()
	st.Moments[0].M = st.Moments[0].M[:1]
	if err := a.Restore(st); err == nil {
		t.Fatal("restored from a truncated moment vector")
	}
	st2 := a.State()
	st2.Moments[0].Name = st2.Moments[1].Name
	if err := a.Restore(st2); err == nil {
		t.Fatal("restored from a state with duplicate names")
	}
}
