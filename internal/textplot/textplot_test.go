package textplot

import (
	"math"
	"strings"
	"testing"
	"unicode/utf8"
)

func TestSparkBasics(t *testing.T) {
	if Spark(nil) != "" {
		t.Fatal("empty input must give empty string")
	}
	s := Spark([]float64{0, 1, 2, 3})
	if utf8.RuneCountInString(s) != 4 {
		t.Fatalf("length mismatch: %q", s)
	}
	runes := []rune(s)
	if runes[0] != '▁' || runes[3] != '█' {
		t.Fatalf("scaling wrong: %q", s)
	}
}

func TestSparkConstantSeries(t *testing.T) {
	s := Spark([]float64{5, 5, 5})
	for _, r := range s {
		if r != '▁' {
			t.Fatalf("constant series must render lowest level: %q", s)
		}
	}
}

func TestSparkHandlesNaN(t *testing.T) {
	s := Spark([]float64{1, math.NaN(), 2})
	runes := []rune(s)
	if len(runes) != 3 || runes[1] != ' ' {
		t.Fatalf("NaN must render as space: %q", s)
	}
	if Spark([]float64{math.NaN()}) != " " {
		t.Fatal("all-NaN must render spaces")
	}
}

func TestChartSharedScale(t *testing.T) {
	out := Chart([]Series{
		{Name: "low", Values: []float64{0, 0, 0}},
		{Name: "high", Values: []float64{10, 10, 10}},
	})
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 2 {
		t.Fatalf("expected 2 lines, got %q", out)
	}
	// shared scale: the low series renders at the bottom level, high at top
	if !strings.Contains(lines[0], "▁▁▁") {
		t.Fatalf("low line wrong: %q", lines[0])
	}
	if !strings.Contains(lines[1], "███") {
		t.Fatalf("high line wrong: %q", lines[1])
	}
	if !strings.Contains(lines[0], "[0, 0]") {
		t.Fatalf("annotation missing: %q", lines[0])
	}
}

func TestChartEmptyInput(t *testing.T) {
	if Chart(nil) != "" {
		t.Fatal("no series must give empty output")
	}
}

func TestHistogramShape(t *testing.T) {
	// bimodal sample: bars at both ends, dip in the middle
	var v []float64
	for i := 0; i < 100; i++ {
		v = append(v, 0.0, 10.0)
	}
	v = append(v, 5.0)
	h := Histogram(v, 5)
	runes := []rune(h)
	if len(runes) != 5 {
		t.Fatalf("bins mismatch: %q", h)
	}
	if runes[0] != '█' || runes[4] != '█' {
		t.Fatalf("modes must peak: %q", h)
	}
	if runes[2] == '█' {
		t.Fatalf("valley must dip: %q", h)
	}
}

func TestHistogramDegenerate(t *testing.T) {
	if Histogram(nil, 5) != "" {
		t.Fatal("empty sample must give empty histogram")
	}
	if Histogram([]float64{1}, 0) != "" {
		t.Fatal("zero bins must give empty histogram")
	}
	if h := Histogram([]float64{3, 3, 3}, 4); utf8.RuneCountInString(h) != 4 {
		t.Fatalf("constant sample: %q", h)
	}
}
