// Package textplot renders small numeric series as terminal-friendly
// sparklines and multi-line charts, used by the CLIs to visualise the
// paper's difference-series figures without any graphics dependency.
package textplot

import (
	"fmt"
	"math"
	"strings"
)

var sparkLevels = []rune("▁▂▃▄▅▆▇█")

// Spark renders a one-line sparkline of the series, scaled to its own
// min/max range. Empty input yields an empty string; NaN/Inf values
// render as spaces.
func Spark(values []float64) string {
	if len(values) == 0 {
		return ""
	}
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, v := range values {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			continue
		}
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	if math.IsInf(lo, 1) { // all values invalid
		return strings.Repeat(" ", len(values))
	}
	span := hi - lo
	var sb strings.Builder
	for _, v := range values {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			sb.WriteByte(' ')
			continue
		}
		idx := 0
		if span > 0 {
			idx = int((v - lo) / span * float64(len(sparkLevels)-1))
		}
		if idx < 0 {
			idx = 0
		}
		if idx >= len(sparkLevels) {
			idx = len(sparkLevels) - 1
		}
		sb.WriteRune(sparkLevels[idx])
	}
	return sb.String()
}

// Series is a named line for Chart.
type Series struct {
	Name   string
	Values []float64
}

// Chart renders aligned sparklines for several series over a shared
// vertical scale, one per row, with min/max annotations:
//
//	Original  ▃▅▂▁…  [0.08, 0.13]
//	VRDAG     ▄▆▃▂…  [0.07, 0.12]
//
// A shared scale keeps the lines visually comparable, which is the whole
// point of the paper's difference plots.
func Chart(series []Series) string {
	lo, hi := math.Inf(1), math.Inf(-1)
	width := 0
	for _, s := range series {
		if len(s.Name) > width {
			width = len(s.Name)
		}
		for _, v := range s.Values {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				continue
			}
			if v < lo {
				lo = v
			}
			if v > hi {
				hi = v
			}
		}
	}
	if math.IsInf(lo, 1) {
		return ""
	}
	span := hi - lo
	var sb strings.Builder
	for _, s := range series {
		sb.WriteString(fmt.Sprintf("%-*s ", width, s.Name))
		for _, v := range s.Values {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				sb.WriteByte(' ')
				continue
			}
			idx := 0
			if span > 0 {
				idx = int((v - lo) / span * float64(len(sparkLevels)-1))
			}
			if idx < 0 {
				idx = 0
			}
			if idx >= len(sparkLevels) {
				idx = len(sparkLevels) - 1
			}
			sb.WriteRune(sparkLevels[idx])
		}
		mn, mx := math.Inf(1), math.Inf(-1)
		for _, v := range s.Values {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				continue
			}
			if v < mn {
				mn = v
			}
			if v > mx {
				mx = v
			}
		}
		if !math.IsInf(mn, 1) {
			sb.WriteString(fmt.Sprintf("  [%.4g, %.4g]", mn, mx))
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}

// Histogram renders a vertical-bar text histogram of a sample with the
// given number of bins (used by vrdag-metrics to show degree and
// attribute distributions).
func Histogram(values []float64, bins int) string {
	if len(values) == 0 || bins <= 0 {
		return ""
	}
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, v := range values {
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	if hi == lo {
		hi = lo + 1
	}
	counts := make([]float64, bins)
	w := (hi - lo) / float64(bins)
	for _, v := range values {
		b := int((v - lo) / w)
		if b < 0 {
			b = 0
		}
		if b >= bins {
			b = bins - 1
		}
		counts[b]++
	}
	return Spark(counts)
}
