// Package downstream implements the case-study pipeline of the paper's
// Section IV-E: forecasting the final graph snapshot with CoEvoGNN (Wang
// et al., TKDE 2021), decomposed into link prediction (F1) and node
// attribute prediction (RMSE), with optional data augmentation by a
// generator's synthetic sequence.
//
// The CoEvoGNN model here is the co-evolution predictor in its essential
// form: per-node states evolve through a GRU fed with neighbourhood
// aggregations of structure and attributes; a bilinear inner-product head
// scores links and a linear head predicts next-step attributes.
package downstream

import (
	"fmt"
	"math"
	"math/rand"

	"vrdag/internal/dyngraph"
	"vrdag/internal/nn"
	"vrdag/internal/tensor"
)

// Config tunes the predictor.
type Config struct {
	Hidden    int     // node state width (default 16)
	Epochs    int     // training epochs (default 30)
	LR        float64 // Adam learning rate (default 1e-2)
	NegPerPos int     // negative links sampled per positive (default 1)
	Seed      int64
}

func (c Config) withDefaults() Config {
	if c.Hidden == 0 {
		c.Hidden = 16
	}
	if c.Epochs == 0 {
		c.Epochs = 30
	}
	if c.LR == 0 {
		c.LR = 1e-2
	}
	if c.NegPerPos == 0 {
		c.NegPerPos = 1
	}
	return c
}

// Model is a CoEvoGNN-style dynamic attributed graph predictor.
type Model struct {
	cfg Config
	rng *rand.Rand

	inProj   *nn.Linear  // [X || deg feats] -> hidden
	gru      *nn.GRUCell // evolves node states across snapshots
	linkSrc  *nn.Linear  // hidden -> hidden (bilinear link head, source side)
	linkDst  *nn.Linear  // hidden -> hidden (destination side)
	attrHead *nn.Linear  // hidden -> F
	adam     *nn.Adam

	n, f int
}

// NewModel creates an untrained predictor for graphs with n nodes and f
// attribute dimensions.
func NewModel(cfg Config, n, f int) *Model {
	cfg = cfg.withDefaults()
	rng := rand.New(rand.NewSource(cfg.Seed))
	m := &Model{cfg: cfg, rng: rng, n: n, f: f}
	m.inProj = nn.NewLinear("coevo.in", f+2, cfg.Hidden, rng)
	m.gru = nn.NewGRUCell("coevo.gru", cfg.Hidden, cfg.Hidden, rng)
	m.linkSrc = nn.NewLinear("coevo.lsrc", cfg.Hidden, cfg.Hidden, rng)
	m.linkDst = nn.NewLinear("coevo.ldst", cfg.Hidden, cfg.Hidden, rng)
	m.attrHead = nn.NewLinear("coevo.attr", cfg.Hidden, max(f, 1), rng)
	m.adam = nn.NewAdam(nn.CollectParams(m.inProj, m.gru, m.linkSrc, m.linkDst, m.attrHead), cfg.LR)
	return m
}

// features assembles the per-snapshot input: attributes plus normalised
// in/out degrees.
func features(s *dyngraph.Snapshot, f int) *tensor.Matrix {
	out := tensor.New(s.N, f+2)
	maxDeg := 1.0
	for v := 0; v < s.N; v++ {
		if d := float64(s.InDegree(v) + s.OutDegree(v)); d > maxDeg {
			maxDeg = d
		}
	}
	for v := 0; v < s.N; v++ {
		row := out.Row(v)
		if s.X != nil && f > 0 {
			copy(row[:f], s.X.Row(v))
		}
		row[f] = float64(s.InDegree(v)) / maxDeg
		row[f+1] = float64(s.OutDegree(v)) / maxDeg
	}
	return out
}

// rollStates runs the recurrent encoder over a prefix of snapshots on the
// tape, aggregating each snapshot's features over its out-neighbourhood.
func (m *Model) rollStates(c *nn.Ctx, snaps []*dyngraph.Snapshot) *tensor.Node {
	t := c.Tape
	h := t.Const(tensor.New(m.n, m.cfg.Hidden))
	for _, s := range snaps {
		x := t.Const(features(s, m.f))
		proj := t.Tanh(m.inProj.Apply(c, x))
		// neighbourhood aggregation: self + mean of out-neighbour features
		agg := t.Add(proj, t.SpMM(s.AdjCSR(), proj))
		h = m.gru.Step(c, agg, h)
	}
	return h
}

// trainSample holds the supervised pairs for one target snapshot.
type trainSample struct {
	prefix []*dyngraph.Snapshot
	target *dyngraph.Snapshot
}

// Fit trains the predictor on every (prefix → next snapshot) pair of the
// provided sequences. Augmented training simply passes extra sequences.
func (m *Model) Fit(seqs ...*dyngraph.Sequence) error {
	var samples []trainSample
	for _, g := range seqs {
		if g.N != m.n || g.F != m.f {
			return fmt.Errorf("downstream: sequence shape N=%d F=%d, model wants N=%d F=%d",
				g.N, g.F, m.n, m.f)
		}
		for t := 1; t < g.T(); t++ {
			samples = append(samples, trainSample{prefix: g.Snapshots[:t], target: g.At(t)})
		}
	}
	if len(samples) == 0 {
		return fmt.Errorf("downstream: no training samples (need sequences with T >= 2)")
	}
	for epoch := 0; epoch < m.cfg.Epochs; epoch++ {
		sample := samples[m.rng.Intn(len(samples))]
		tape := tensor.NewTape()
		c := nn.NewTrainCtx(tape, m.adam)
		h := m.rollStates(c, sample.prefix)

		// Link loss on positive edges + sampled negatives.
		src, dst, targets := m.linkPairs(sample.target)
		loss := tape.Const(tensor.New(1, 1))
		if len(src) > 0 {
			logits := m.linkLogits(c, h, src, dst)
			loss = tape.Add(loss, tape.BCEWithLogits(logits, targets))
		}
		if m.f > 0 {
			pred := m.attrHead.Apply(c, h)
			loss = tape.Add(loss, tape.MSELoss(pred, sample.target.X))
		}
		tape.Backward(loss)
		c.Flush()
		m.adam.Step()
	}
	return nil
}

// linkPairs samples positives and negatives from the target snapshot.
func (m *Model) linkPairs(s *dyngraph.Snapshot) (src, dst []int, targets *tensor.Matrix) {
	esrc, edst := s.EdgeLists()
	src = append(src, esrc...)
	dst = append(dst, edst...)
	for k := 0; k < len(esrc)*m.cfg.NegPerPos; k++ {
		u, v := m.rng.Intn(s.N), m.rng.Intn(s.N)
		if u == v || s.HasEdge(u, v) {
			continue
		}
		src = append(src, u)
		dst = append(dst, v)
	}
	targets = tensor.New(len(src), 1)
	for k := range esrc {
		targets.Data[k] = 1
	}
	return src, dst, targets
}

// linkLogits scores candidate links with the bilinear head.
func (m *Model) linkLogits(c *nn.Ctx, h *tensor.Node, src, dst []int) *tensor.Node {
	t := c.Tape
	hs := m.linkSrc.Apply(c, t.GatherRows(h, src))
	hd := m.linkDst.Apply(c, t.GatherRows(h, dst))
	return t.SumRows(t.Mul(hs, hd))
}

// Result is the case-study outcome for one configuration.
type Result struct {
	LinkF1   float64 // link prediction F1 on the final snapshot
	AttrRMSE float64 // attribute prediction RMSE on the final snapshot
}

// Evaluate predicts the final snapshot of eval given its preceding
// snapshots and scores link F1 and attribute RMSE (Fig. 10 protocol).
func (m *Model) Evaluate(eval *dyngraph.Sequence) (Result, error) {
	if eval.T() < 2 {
		return Result{}, fmt.Errorf("downstream: evaluation needs T >= 2")
	}
	if eval.N != m.n || eval.F != m.f {
		return Result{}, fmt.Errorf("downstream: evaluation shape mismatch")
	}
	target := eval.At(eval.T() - 1)
	tape := tensor.NewTape()
	c := nn.NewEvalCtx(tape)
	h := m.rollStates(c, eval.Snapshots[:eval.T()-1])

	// Link prediction: score positives and an equal number of negatives;
	// threshold at 0.5.
	src, dst, targets := m.linkPairs(target)
	var tp, fp, fn float64
	if len(src) > 0 {
		logits := m.linkLogits(c, h, src, dst)
		for k := range src {
			pred := tensor.Sigmoid(logits.Value.Data[k]) > 0.5
			pos := targets.Data[k] > 0.5
			switch {
			case pred && pos:
				tp++
			case pred && !pos:
				fp++
			case !pred && pos:
				fn++
			}
		}
	}
	f1 := 0.0
	if 2*tp+fp+fn > 0 {
		f1 = 2 * tp / (2*tp + fp + fn)
	}

	rmse := 0.0
	if m.f > 0 {
		pred := m.attrHead.Apply(c, h)
		sum := 0.0
		for i, v := range pred.Value.Data {
			d := v - target.X.Data[i]
			sum += d * d
		}
		rmse = math.Sqrt(sum / float64(len(pred.Value.Data)))
	}
	return Result{LinkF1: f1, AttrRMSE: rmse}, nil
}

// RunCaseStudy reproduces one bar group of Fig. 10: train CoEvoGNN on the
// original sequence alone ("No Augmentation") and again with a synthetic
// sequence appended, then evaluate both on the original's final snapshot.
func RunCaseStudy(orig *dyngraph.Sequence, synthetic *dyngraph.Sequence, cfg Config) (base, augmented Result, err error) {
	mBase := NewModel(cfg, orig.N, orig.F)
	if err = mBase.Fit(orig); err != nil {
		return
	}
	if base, err = mBase.Evaluate(orig); err != nil {
		return
	}
	cfgAug := cfg
	cfgAug.Seed = cfg.Seed + 1
	mAug := NewModel(cfgAug, orig.N, orig.F)
	if err = mAug.Fit(orig, synthetic); err != nil {
		return
	}
	augmented, err = mAug.Evaluate(orig)
	return
}
