package downstream

import (
	"math"
	"testing"

	"vrdag/internal/datasets"
	"vrdag/internal/dyngraph"
)

func evalSeq(t *testing.T, seed int64) *dyngraph.Sequence {
	t.Helper()
	g, _, err := datasets.Replica(datasets.Email, 0.03, seed)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestModelFitAndEvaluate(t *testing.T) {
	g := evalSeq(t, 1)
	m := NewModel(Config{Epochs: 10, Seed: 2}, g.N, g.F)
	if err := m.Fit(g); err != nil {
		t.Fatal(err)
	}
	res, err := m.Evaluate(g)
	if err != nil {
		t.Fatal(err)
	}
	if res.LinkF1 < 0 || res.LinkF1 > 1 {
		t.Fatalf("F1 out of range: %g", res.LinkF1)
	}
	if math.IsNaN(res.AttrRMSE) || res.AttrRMSE < 0 {
		t.Fatalf("bad RMSE: %g", res.AttrRMSE)
	}
}

func TestFitRejectsShapeMismatch(t *testing.T) {
	g := evalSeq(t, 3)
	m := NewModel(Config{Epochs: 1}, g.N+1, g.F)
	if err := m.Fit(g); err == nil {
		t.Fatal("shape mismatch must error")
	}
}

func TestFitRejectsTooShortSequences(t *testing.T) {
	m := NewModel(Config{Epochs: 1}, 5, 0)
	g := dyngraph.NewSequence(5, 0, 1)
	if err := m.Fit(g); err == nil {
		t.Fatal("T=1 gives no samples and must error")
	}
}

func TestEvaluateRequiresHistory(t *testing.T) {
	g := evalSeq(t, 4)
	m := NewModel(Config{Epochs: 1, Seed: 5}, g.N, g.F)
	if err := m.Fit(g); err != nil {
		t.Fatal(err)
	}
	short := dyngraph.NewSequence(g.N, g.F, 1)
	if _, err := m.Evaluate(short); err == nil {
		t.Fatal("evaluation on T=1 must error")
	}
}

func TestTrainingImprovesLinkF1OverRandom(t *testing.T) {
	g := evalSeq(t, 6)
	trained := NewModel(Config{Epochs: 60, Seed: 7}, g.N, g.F)
	if err := trained.Fit(g); err != nil {
		t.Fatal(err)
	}
	resT, err := trained.Evaluate(g)
	if err != nil {
		t.Fatal(err)
	}
	// A random-weight model evaluated on the same protocol.
	random := NewModel(Config{Epochs: 1, Seed: 8}, g.N, g.F)
	if err := random.Fit(g); err != nil {
		t.Fatal(err)
	}
	resR, err := random.Evaluate(g)
	if err != nil {
		t.Fatal(err)
	}
	if resT.LinkF1 < resR.LinkF1-0.1 {
		t.Fatalf("training should not hurt F1 badly: trained=%g random=%g", resT.LinkF1, resR.LinkF1)
	}
}

func TestRunCaseStudyProducesBothArms(t *testing.T) {
	g := evalSeq(t, 9)
	// Synthetic augmentation: an independent replica from the same
	// process plays the role of generator output.
	synth := evalSeq(t, 10)
	base, aug, err := RunCaseStudy(g, synth, Config{Epochs: 15, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	for name, r := range map[string]Result{"base": base, "aug": aug} {
		if r.LinkF1 < 0 || r.LinkF1 > 1 || math.IsNaN(r.AttrRMSE) {
			t.Fatalf("%s arm invalid: %+v", name, r)
		}
	}
}

func TestFeaturesShape(t *testing.T) {
	s := dyngraph.NewSnapshot(4, 3)
	s.AddEdge(0, 1)
	f := features(s, 3)
	if f.Rows != 4 || f.Cols != 5 {
		t.Fatalf("features shape %dx%d", f.Rows, f.Cols)
	}
	if f.At(0, 4) == 0 { // node 0 has out-degree 1 -> normalised nonzero
		t.Fatal("degree feature missing")
	}
}

func TestDeterministicGivenSeed(t *testing.T) {
	g := evalSeq(t, 12)
	run := func() Result {
		m := NewModel(Config{Epochs: 5, Seed: 13}, g.N, g.F)
		if err := m.Fit(g); err != nil {
			t.Fatal(err)
		}
		r, err := m.Evaluate(g)
		if err != nil {
			t.Fatal(err)
		}
		return r
	}
	a, b := run(), run()
	if a != b {
		t.Fatalf("same seed must reproduce results: %+v vs %+v", a, b)
	}
}
