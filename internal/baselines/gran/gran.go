// Package gran reimplements the algorithmic skeleton of GRAN (Liao et al.,
// NeurIPS 2019), a *static* graph generator included as a baseline: nodes
// are added block-by-block and each new block's edges toward the existing
// partial graph are sampled from a mixture of Bernoulli distributions.
//
// The original parameterises the Bernoulli means with a GNN over the
// partial graph; this skeleton uses the calibrated statistical equivalent
// (degree-preferential attachment mixed with a uniform component), which
// preserves the block-autoregressive generation order, the mixture
// decomposition, and GRAN's key limitation in this benchmark: each
// snapshot is generated independently, so temporal structure is lost —
// exactly the behaviour Table I reports.
package gran

import (
	"fmt"
	"math/rand"

	"vrdag/internal/dyngraph"
)

// Config tunes block generation.
type Config struct {
	BlockSize int     // nodes added per autoregressive block (default 16)
	MixUnif   float64 // weight of the uniform mixture component (default 0.2)
	Seed      int64
}

func (c Config) withDefaults() Config {
	if c.BlockSize == 0 {
		c.BlockSize = 16
	}
	if c.MixUnif == 0 {
		c.MixUnif = 0.2
	}
	return c
}

// Gen implements baselines.Generator.
type Gen struct {
	cfg Config
	rng *rand.Rand

	n          int
	edgeTarget float64 // mean edges per snapshot from the fit
	recipRate  float64 // observed reciprocity
}

// New creates an unfitted GRAN baseline.
func New(cfg Config) *Gen {
	cfg = cfg.withDefaults()
	return &Gen{cfg: cfg, rng: rand.New(rand.NewSource(cfg.Seed))}
}

// Name implements baselines.Generator.
func (g *Gen) Name() string { return "GRAN" }

// Fit records the static statistics GRAN conditions on.
func (g *Gen) Fit(seq *dyngraph.Sequence) error {
	if seq.T() == 0 {
		return fmt.Errorf("gran: empty sequence")
	}
	g.n = seq.N
	total, recip, pairs := 0.0, 0.0, 0.0
	for _, s := range seq.Snapshots {
		total += float64(s.NumEdges())
		for u := 0; u < s.N; u++ {
			for _, v := range s.Out[u] {
				pairs++
				if s.HasEdge(v, u) {
					recip++
				}
			}
		}
	}
	g.edgeTarget = total / float64(seq.T())
	if pairs > 0 {
		g.recipRate = recip / pairs
	}
	return nil
}

// Generate produces T independent static snapshots block-autoregressively.
func (g *Gen) Generate(t int) (*dyngraph.Sequence, error) {
	if g.n == 0 {
		return nil, fmt.Errorf("gran: Generate before Fit")
	}
	if t <= 0 {
		return nil, fmt.Errorf("gran: T must be positive, got %d", t)
	}
	out := dyngraph.NewSequence(g.n, 0, t)
	for tt := 0; tt < t; tt++ {
		g.generateSnapshot(out.At(tt))
	}
	return out, nil
}

// generateSnapshot adds nodes block-by-block; each block's members draw
// edges toward the already-materialised prefix from a two-component
// Bernoulli mixture (degree-preferential vs uniform).
func (g *Gen) generateSnapshot(s *dyngraph.Snapshot) {
	order := g.rng.Perm(g.n)
	deg := make([]float64, g.n)
	// Edges per new node so the snapshot lands on the fitted density.
	perNode := g.edgeTarget / float64(g.n)
	placed := 0
	for blockStart := 0; blockStart < g.n; blockStart += g.cfg.BlockSize {
		blockEnd := blockStart + g.cfg.BlockSize
		if blockEnd > g.n {
			blockEnd = g.n
		}
		prefix := order[:blockStart]
		for bi := blockStart; bi < blockEnd; bi++ {
			u := order[bi]
			if len(prefix) == 0 {
				continue
			}
			// Expected edges for this node (Bernoulli thinning keeps the
			// count stochastic, like GRAN's per-entry sampling).
			quota := perNode
			for quota > 0 {
				if quota < 1 && g.rng.Float64() > quota {
					break
				}
				quota--
				var v int
				if g.rng.Float64() < g.cfg.MixUnif {
					v = prefix[g.rng.Intn(len(prefix))]
				} else {
					v = g.preferential(prefix, deg)
				}
				if v == u {
					continue
				}
				// direction: new→old or old→new with equal odds
				if g.rng.Float64() < 0.5 {
					if s.AddEdge(u, v) {
						deg[u]++
						deg[v]++
						placed++
					}
				} else {
					if s.AddEdge(v, u) {
						deg[u]++
						deg[v]++
						placed++
					}
				}
				if g.recipRate > 0 && g.rng.Float64() < g.recipRate {
					if s.HasEdge(u, v) {
						s.AddEdge(v, u)
					} else {
						s.AddEdge(u, v)
					}
				}
			}
		}
	}
}

// preferential samples from prefix proportionally to degree+1 via linear
// cumulative search over a bounded random window (cheap approximation that
// avoids rebuilding prefix sums every insertion).
func (g *Gen) preferential(prefix []int, deg []float64) int {
	best := prefix[g.rng.Intn(len(prefix))]
	for k := 0; k < 3; k++ { // max-of-k sampling biases toward high degree
		v := prefix[g.rng.Intn(len(prefix))]
		if deg[v] > deg[best] {
			best = v
		}
	}
	return best
}
