// Package tigger reimplements the algorithmic skeleton of TIGGER (Gupta et
// al., AAAI 2022), the most scalable temporal random-walk generator: a
// transition model is fitted once (the original pre-trains an RNN over
// temporal point processes), and generation samples walks from the fitted
// model without per-step temporal filtering or discrimination. Per-walk
// cost is therefore the lowest of the walk family, matching the paper's
// efficiency ordering, while generation still pays the O(M·l′) path
// sampling + merging cost that VRDAG's one-shot decoding avoids.
package tigger

import (
	"fmt"
	"math/rand"

	"vrdag/internal/baselines/walker"
	"vrdag/internal/dyngraph"
)

// Config tunes the transition model and walk sampling.
type Config struct {
	WalkLen     int     // walk length l′ (default 6)
	TrainFactor float64 // pre-training walks per temporal edge (default 2)
	RNNHidden   int     // recurrent walker width (default 128)
	Seed        int64
}

func (c Config) withDefaults() Config {
	if c.WalkLen == 0 {
		c.WalkLen = 6
	}
	if c.TrainFactor == 0 {
		c.TrainFactor = 2
	}
	if c.RNNHidden == 0 {
		c.RNNHidden = 128
	}
	return c
}

// Gen implements baselines.Generator.
type Gen struct {
	cfg Config
	rng *rand.Rand
	ix  *walker.Index
	tm  *walker.TransitionModel
	net *walker.NeuralScorer // stand-in for the recurrent walker forward
}

// New creates an unfitted TIGGER baseline.
func New(cfg Config) *Gen {
	cfg = cfg.withDefaults()
	return &Gen{
		cfg: cfg,
		rng: rand.New(rand.NewSource(cfg.Seed)),
		net: walker.NewNeuralScorer(16, cfg.RNNHidden, 1, cfg.Seed+1),
	}
}

// Name implements baselines.Generator.
func (g *Gen) Name() string { return "TIGGER" }

// Fit builds the transition model (one pass) and runs the pre-training
// walk sampling the original uses to train its recurrent walker.
func (g *Gen) Fit(seq *dyngraph.Sequence) error {
	g.ix = walker.BuildIndex(seq)
	if g.ix.M() == 0 {
		return fmt.Errorf("tigger: cannot fit on an edgeless sequence")
	}
	g.tm = walker.FitTransitions(g.ix)
	nWalks := int(g.cfg.TrainFactor * float64(g.ix.M()) / float64(g.cfg.WalkLen))
	for i := 0; i < nWalks; i++ {
		w := g.tm.Walk(g.cfg.WalkLen, g.rng)
		g.net.ScoreWalk(w) // RNN forward per pre-training walk
	}
	return nil
}

// Generate samples pre-trained walks until the edge budget is met.
func (g *Gen) Generate(t int) (*dyngraph.Sequence, error) {
	if g.tm == nil {
		return nil, fmt.Errorf("tigger: Generate before Fit")
	}
	if t <= 0 {
		return nil, fmt.Errorf("tigger: T must be positive, got %d", t)
	}
	targetEdges := g.ix.M() * t / g.ix.T
	if targetEdges < 1 {
		targetEdges = 1
	}
	var walks [][]walker.TemporalEdge
	edges := 0
	guard := 0
	for edges < targetEdges && guard < targetEdges*20 {
		guard++
		w := g.tm.Walk(g.cfg.WalkLen, g.rng)
		if len(w) == 0 {
			continue
		}
		// Recurrent forward plus next-node logits over the vocabulary:
		// the two per-step costs of the original's generation loop.
		for _, e := range w {
			g.net.ScoreEdge(e.U, e.V, e.T)
			g.net.VocabProject(g.ix.N)
		}
		if t != g.ix.T {
			for j := range w {
				w[j].T = w[j].T * t / g.ix.T
			}
		}
		walks = append(walks, w)
		edges += len(w)
	}
	return walker.Assemble(g.ix.N, t, 0, walks), nil
}
