package baselines_test

import (
	"strings"
	"testing"

	"vrdag/internal/baselines"
	"vrdag/internal/baselines/dymond"
	"vrdag/internal/baselines/gencat"
	"vrdag/internal/baselines/gran"
	"vrdag/internal/baselines/normalattr"
	"vrdag/internal/baselines/taggen"
	"vrdag/internal/baselines/tggan"
	"vrdag/internal/baselines/tigger"
	"vrdag/internal/datasets"
	"vrdag/internal/dyngraph"
	"vrdag/internal/metrics"
)

func trainSeq(t *testing.T) *dyngraph.Sequence {
	t.Helper()
	g, _, err := datasets.Replica(datasets.Email, 0.05, 17)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func allGens() []baselines.Generator {
	return []baselines.Generator{
		taggen.New(taggen.Config{Seed: 1}),
		tggan.New(tggan.Config{Seed: 2}),
		tigger.New(tigger.Config{Seed: 3}),
		dymond.New(dymond.Config{Seed: 4}),
		gran.New(gran.Config{Seed: 5}),
		gencat.New(gencat.Config{Seed: 6}),
		normalattr.New(normalattr.Config{Seed: 7}),
	}
}

func TestAllBaselinesFitGenerateContract(t *testing.T) {
	g := trainSeq(t)
	for _, gen := range allGens() {
		gen := gen
		t.Run(gen.Name(), func(t *testing.T) {
			// Generate before Fit must fail.
			if _, err := gen.Generate(3); err == nil {
				t.Fatal("Generate before Fit must error")
			}
			if err := gen.Fit(g); err != nil {
				t.Fatalf("Fit: %v", err)
			}
			// Bad T must fail.
			if _, err := gen.Generate(0); err == nil {
				t.Fatal("T=0 must error")
			}
			out, err := gen.Generate(g.T())
			if err != nil {
				t.Fatalf("Generate: %v", err)
			}
			if out.N != g.N {
				t.Fatalf("N=%d, want %d", out.N, g.N)
			}
			if out.T() != g.T() {
				t.Fatalf("T=%d, want %d", out.T(), g.T())
			}
			if err := out.Validate(); err != nil {
				t.Fatalf("invalid output: %v", err)
			}
			if out.TotalTemporalEdges() == 0 {
				t.Fatal("no edges generated")
			}
		})
	}
}

func TestWalkBaselinesMatchDensity(t *testing.T) {
	g := trainSeq(t)
	for _, gen := range []baselines.Generator{
		taggen.New(taggen.Config{Seed: 11}),
		tggan.New(tggan.Config{Seed: 12}),
		tigger.New(tigger.Config{Seed: 13}),
	} {
		if err := gen.Fit(g); err != nil {
			t.Fatal(err)
		}
		out, err := gen.Generate(g.T())
		if err != nil {
			t.Fatal(err)
		}
		// Walk merging deduplicates repeated edges, so the synthetic count
		// may fall below the raw target; it must stay within 4x either way.
		orig, got := float64(g.TotalTemporalEdges()), float64(out.TotalTemporalEdges())
		if got < orig/4 || got > orig*4 {
			t.Errorf("%s: edge budget missed: orig=%v got=%v", gen.Name(), orig, got)
		}
	}
}

func TestWalkBaselinesReuseRealEdges(t *testing.T) {
	// Temporal-walk methods resample observed transitions, so synthetic
	// edges should overwhelmingly be real node pairs.
	g := trainSeq(t)
	gen := tigger.New(tigger.Config{Seed: 21})
	if err := gen.Fit(g); err != nil {
		t.Fatal(err)
	}
	out, err := gen.Generate(g.T())
	if err != nil {
		t.Fatal(err)
	}
	pairSeen := map[[2]int]bool{}
	for _, s := range g.Snapshots {
		for u := 0; u < s.N; u++ {
			for _, v := range s.Out[u] {
				pairSeen[[2]int{u, v}] = true
			}
		}
	}
	real, total := 0, 0
	for _, s := range out.Snapshots {
		for u := 0; u < s.N; u++ {
			for _, v := range s.Out[u] {
				total++
				if pairSeen[[2]int{u, v}] {
					real++
				}
			}
		}
	}
	if total == 0 || float64(real)/float64(total) < 0.95 {
		t.Fatalf("walk output should reuse real pairs: %d/%d", real, total)
	}
}

func TestDymondRejectsOversizedMotifStore(t *testing.T) {
	g, _, err := datasets.Replica(datasets.Email, 0.1, 23)
	if err != nil {
		t.Fatal(err)
	}
	gen := dymond.New(dymond.Config{MaxMotifs: 10, Seed: 1})
	if err := gen.Fit(g); err == nil {
		t.Fatal("tiny motif budget must make Fit fail (paper: Dymond only runs on Email)")
	} else if !strings.Contains(err.Error(), "motif store") {
		t.Fatalf("unexpected error: %v", err)
	}
}

func TestGenCATPreservesAttributeDistribution(t *testing.T) {
	g := trainSeq(t)
	gen := gencat.New(gencat.Config{Seed: 31})
	if err := gen.Fit(g); err != nil {
		t.Fatal(err)
	}
	out, err := gen.Generate(g.T())
	if err != nil {
		t.Fatal(err)
	}
	jsd := metrics.AttrJSD(g, out, 32)
	if jsd > 0.5 {
		t.Fatalf("GenCAT attribute JSD too high: %g", jsd)
	}
}

func TestGenCATSnapshotsAreTemporallyIndependent(t *testing.T) {
	// The static baseline's consecutive snapshots share almost no edges
	// (unlike the original, which persists ~25% of them).
	g := trainSeq(t)
	gen := gencat.New(gencat.Config{Seed: 32})
	if err := gen.Fit(g); err != nil {
		t.Fatal(err)
	}
	out, err := gen.Generate(g.T())
	if err != nil {
		t.Fatal(err)
	}
	origDiff := metrics.DifferenceSeries(g, metrics.TotalDegrees)
	genDiff := metrics.DifferenceSeries(out, metrics.TotalDegrees)
	// Static generation churns many more edges between steps than the
	// persistent original.
	if metrics.SeriesMAE(origDiff, genDiff) == 0 {
		t.Fatal("expected measurable dynamic divergence for the static baseline")
	}
}

func TestNormalBaselineMatchesMoments(t *testing.T) {
	g := trainSeq(t)
	gen := normalattr.New(normalattr.Config{Seed: 41})
	if err := gen.Fit(g); err != nil {
		t.Fatal(err)
	}
	out, err := gen.Generate(g.T())
	if err != nil {
		t.Fatal(err)
	}
	// EMD between real and normal-fit attributes is finite and small-ish,
	// but correlation structure must be destroyed.
	realRows := metrics.AttributeRows(g)
	genRows := metrics.AttributeRows(out)
	mReal := metrics.SpearmanMatrix(realRows)
	mGen := metrics.SpearmanMatrix(genRows)
	if len(mReal) >= 2 {
		if abs(mGen[0][1]) > abs(mReal[0][1])/2 && abs(mReal[0][1]) > 0.3 {
			t.Fatalf("independent normal draws should break correlations: real=%g gen=%g",
				mReal[0][1], mGen[0][1])
		}
	}
}

func TestNormalBaselineRequiresAttributes(t *testing.T) {
	gen := normalattr.New(normalattr.Config{})
	if err := gen.Fit(dyngraph.NewSequence(10, 0, 3)); err == nil {
		t.Fatal("unattributed sequence must be rejected")
	}
}

func TestGRANIgnoresTemporalStructure(t *testing.T) {
	g := trainSeq(t)
	gen := gran.New(gran.Config{Seed: 51})
	if err := gen.Fit(g); err != nil {
		t.Fatal(err)
	}
	out, err := gen.Generate(4)
	if err != nil {
		t.Fatal(err)
	}
	// Consecutive snapshots from the static model share very few edges.
	shared, total := 0, 0
	for tt := 1; tt < out.T(); tt++ {
		prev, cur := out.At(tt-1), out.At(tt)
		for u := 0; u < out.N; u++ {
			for _, v := range prev.Out[u] {
				total++
				if cur.HasEdge(u, v) {
					shared++
				}
			}
		}
	}
	if total > 0 && float64(shared)/float64(total) > 0.2 {
		t.Fatalf("GRAN snapshots should be near-independent, persistence=%g",
			float64(shared)/float64(total))
	}
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
