// Package dymond reimplements the algorithmic skeleton of Dymond (Zeno et
// al., WWW 2021): a motif-based dynamic graph model that estimates
// time-independent arrival rates for edge, wedge and triangle motifs from
// the observed sequence and replays motif arrivals to synthesise new
// snapshots.
//
// Faithful to the original's main practical limitation, Fit materialises
// the observed motif instances (the paper notes Dymond "requires the
// storage of millions of motif structures across time" and could only be
// executed on the smallest dataset); MaxMotifs guards against exhausting
// memory and makes Fit fail on large inputs just like the original.
package dymond

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"vrdag/internal/dyngraph"
)

// Config tunes motif extraction.
type Config struct {
	MaxMotifs int // Fit fails beyond this many stored instances (default 2M)
	Seed      int64
}

func (c Config) withDefaults() Config {
	if c.MaxMotifs == 0 {
		c.MaxMotifs = 2_000_000
	}
	return c
}

type triangle struct{ a, b, c int }
type wedge struct{ center, a, b int }

// Gen implements baselines.Generator.
type Gen struct {
	cfg Config
	rng *rand.Rand

	n, t       int
	edgeRate   float64 // mean non-motif edges per step
	wedgeRate  float64 // mean wedge arrivals per step
	triRate    float64 // mean triangle arrivals per step
	nodeWeight []float64
	cumWeight  []float64
	triangles  []triangle // stored instances (memory-heavy by design)
	wedges     []wedge
}

// New creates an unfitted Dymond baseline.
func New(cfg Config) *Gen {
	cfg = cfg.withDefaults()
	return &Gen{cfg: cfg, rng: rand.New(rand.NewSource(cfg.Seed))}
}

// Name implements baselines.Generator.
func (g *Gen) Name() string { return "Dymond" }

// Fit enumerates motifs per snapshot and estimates arrival rates.
func (g *Gen) Fit(seq *dyngraph.Sequence) error {
	g.n, g.t = seq.N, seq.T()
	if g.t == 0 {
		return fmt.Errorf("dymond: empty sequence")
	}
	g.nodeWeight = make([]float64, seq.N)
	var edges, wedgesN, tris float64
	for _, s := range seq.Snapshots {
		nbrs := make([][]int, s.N)
		for v := 0; v < s.N; v++ {
			nbrs[v] = s.UndirectedNeighbors(v)
			g.nodeWeight[v] += float64(len(nbrs[v]))
		}
		has := func(list []int, x int) bool {
			i := sort.SearchInts(list, x)
			return i < len(list) && list[i] == x
		}
		for v := 0; v < s.N; v++ {
			k := len(nbrs[v])
			for i := 0; i < k; i++ {
				for j := i + 1; j < k; j++ {
					a, b := nbrs[v][i], nbrs[v][j]
					if has(nbrs[a], b) {
						if v < a && a < b { // count each triangle once
							tris++
							g.triangles = append(g.triangles, triangle{v, a, b})
						}
					} else {
						wedgesN++
						g.wedges = append(g.wedges, wedge{v, a, b})
					}
					if len(g.triangles)+len(g.wedges) > g.cfg.MaxMotifs {
						return fmt.Errorf("dymond: motif store exceeded %d instances; "+
							"the motif-based model does not scale to this input (see paper §IV-B)",
							g.cfg.MaxMotifs)
					}
				}
			}
		}
		edges += float64(s.NumEdges())
	}
	tt := float64(g.t)
	g.edgeRate = edges / tt
	g.wedgeRate = wedgesN / tt / 4 // wedges are abundant; damp replays
	g.triRate = tris / tt
	g.cumWeight = make([]float64, seq.N+1)
	for v := 0; v < seq.N; v++ {
		g.cumWeight[v+1] = g.cumWeight[v] + g.nodeWeight[v] + 1
	}
	return nil
}

func (g *Gen) sampleNode() int {
	total := g.cumWeight[g.n]
	u := g.rng.Float64() * total
	i := sort.SearchFloat64s(g.cumWeight[1:], u)
	if i >= g.n {
		i = g.n - 1
	}
	return i
}

func (g *Gen) addDirected(s *dyngraph.Snapshot, a, b int) {
	if g.rng.Float64() < 0.5 {
		s.AddEdge(a, b)
	} else {
		s.AddEdge(b, a)
	}
}

// Generate replays motif arrivals with exponential-clock semantics
// (Poisson counts per step at the fitted rates).
func (g *Gen) Generate(t int) (*dyngraph.Sequence, error) {
	if g.cumWeight == nil {
		return nil, fmt.Errorf("dymond: Generate before Fit")
	}
	if t <= 0 {
		return nil, fmt.Errorf("dymond: T must be positive, got %d", t)
	}
	out := dyngraph.NewSequence(g.n, 0, t)
	for tt := 0; tt < t; tt++ {
		s := out.At(tt)
		// Triangle arrivals: replay stored instances (preferred) or sample
		// fresh node triples by weight.
		nTri := poisson(g.triRate, g.rng)
		for i := 0; i < nTri; i++ {
			var a, b, c int
			if len(g.triangles) > 0 && g.rng.Float64() < 0.7 {
				tr := g.triangles[g.rng.Intn(len(g.triangles))]
				a, b, c = tr.a, tr.b, tr.c
			} else {
				a, b, c = g.sampleNode(), g.sampleNode(), g.sampleNode()
			}
			if a == b || b == c || a == c {
				continue
			}
			g.addDirected(s, a, b)
			g.addDirected(s, b, c)
			g.addDirected(s, a, c)
		}
		nWedge := poisson(g.wedgeRate, g.rng)
		for i := 0; i < nWedge; i++ {
			var ctr, a, b int
			if len(g.wedges) > 0 && g.rng.Float64() < 0.7 {
				w := g.wedges[g.rng.Intn(len(g.wedges))]
				ctr, a, b = w.center, w.a, w.b
			} else {
				ctr, a, b = g.sampleNode(), g.sampleNode(), g.sampleNode()
			}
			if ctr == a || ctr == b || a == b {
				continue
			}
			g.addDirected(s, ctr, a)
			g.addDirected(s, ctr, b)
		}
		// Residual single-edge arrivals to reach the fitted density.
		for float64(s.NumEdges()) < g.edgeRate {
			a, b := g.sampleNode(), g.sampleNode()
			if a == b {
				continue
			}
			g.addDirected(s, a, b)
		}
	}
	return out, nil
}

func poisson(lambda float64, rng *rand.Rand) int {
	if lambda <= 0 {
		return 0
	}
	if lambda > 30 {
		v := int(lambda + rng.NormFloat64()*math.Sqrt(lambda) + 0.5)
		if v < 0 {
			v = 0
		}
		return v
	}
	l := math.Exp(-lambda)
	k, p := 0, 1.0
	for {
		p *= rng.Float64()
		if p <= l {
			return k
		}
		k++
	}
}
