// Package gencat reimplements GenCAT (Maekawa et al., Information Systems
// 2023), the state-of-the-art *static* attributed graph generator used as
// the paper's strongest attribute baseline. GenCAT models (i) node-class
// memberships, (ii) a class-to-class preference (connection proportion)
// matrix, (iii) per-node degrees, and (iv) per-class attribute
// distributions, then samples graphs whose class/attribute/topology
// relationships match the fitted ones.
//
// Being static, it generates every snapshot independently — it cannot
// carry node behaviour across timesteps, which is exactly the failure mode
// the paper's dynamic-difference experiments expose.
package gencat

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"vrdag/internal/dyngraph"
)

// Config tunes the class model.
type Config struct {
	Classes int // latent class count (default 4)
	Seed    int64
}

func (c Config) withDefaults() Config {
	if c.Classes == 0 {
		c.Classes = 4
	}
	return c
}

// Gen implements baselines.Generator.
type Gen struct {
	cfg Config
	rng *rand.Rand

	n, f       int
	class      []int       // fitted node-class memberships
	classPref  [][]float64 // class-to-class connection proportions (row-normalised cumulative)
	classNodes [][]int     // members per class
	classCum   [][]float64 // degree-weighted cumulative per class
	attrMean   [][]float64 // per class × dim
	attrStd    [][]float64
	edgeTarget float64 // mean edges per snapshot
}

// New creates an unfitted GenCAT baseline.
func New(cfg Config) *Gen {
	cfg = cfg.withDefaults()
	return &Gen{cfg: cfg, rng: rand.New(rand.NewSource(cfg.Seed))}
}

// Name implements baselines.Generator.
func (g *Gen) Name() string { return "GenCAT" }

// Fit estimates classes (degree-quantile clustering refined by attribute
// means), the class preference matrix, per-node degree weights, and the
// per-class attribute distributions.
func (g *Gen) Fit(seq *dyngraph.Sequence) error {
	if seq.T() == 0 {
		return fmt.Errorf("gencat: empty sequence")
	}
	g.n, g.f = seq.N, seq.F
	k := g.cfg.Classes

	// Aggregate degree and mean attributes over the sequence.
	deg := make([]float64, g.n)
	attrAvg := make([][]float64, g.n)
	for i := range attrAvg {
		attrAvg[i] = make([]float64, max(g.f, 1))
	}
	edges := 0.0
	for _, s := range seq.Snapshots {
		edges += float64(s.NumEdges())
		for v := 0; v < g.n; v++ {
			deg[v] += float64(s.OutDegree(v) + s.InDegree(v))
			if g.f > 0 {
				row := s.X.Row(v)
				for j := 0; j < g.f; j++ {
					attrAvg[v][j] += row[j] / float64(seq.T())
				}
			}
		}
	}
	g.edgeTarget = edges / float64(seq.T())

	// Class assignment: k-quantiles of a combined score (first attribute
	// mean when available, degree otherwise). This captures GenCAT's
	// class↔attribute coupling without a full EM fit.
	score := make([]float64, g.n)
	for v := 0; v < g.n; v++ {
		if g.f > 0 {
			score[v] = attrAvg[v][0]
		} else {
			score[v] = deg[v]
		}
	}
	idx := make([]int, g.n)
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return score[idx[a]] < score[idx[b]] })
	g.class = make([]int, g.n)
	for r, v := range idx {
		g.class[v] = r * k / g.n
	}

	// Class preference matrix from observed edges.
	pref := make([][]float64, k)
	for i := range pref {
		pref[i] = make([]float64, k)
	}
	for _, s := range seq.Snapshots {
		for u := 0; u < g.n; u++ {
			for _, v := range s.Out[u] {
				pref[g.class[u]][g.class[v]]++
			}
		}
	}
	g.classPref = make([][]float64, k)
	for i := 0; i < k; i++ {
		row := make([]float64, k+1)
		for j := 0; j < k; j++ {
			row[j+1] = row[j] + pref[i][j] + 1 // +1 smoothing
		}
		g.classPref[i] = row
	}

	// Degree-weighted member tables per class.
	g.classNodes = make([][]int, k)
	g.classCum = make([][]float64, k)
	for c := 0; c < k; c++ {
		var members []int
		for v := 0; v < g.n; v++ {
			if g.class[v] == c {
				members = append(members, v)
			}
		}
		cum := make([]float64, len(members)+1)
		for i, v := range members {
			cum[i+1] = cum[i] + deg[v] + 1
		}
		g.classNodes[c] = members
		g.classCum[c] = cum
	}

	// Per-class attribute Gaussians.
	if g.f > 0 {
		g.attrMean = make([][]float64, k)
		g.attrStd = make([][]float64, k)
		counts := make([]float64, k)
		for c := 0; c < k; c++ {
			g.attrMean[c] = make([]float64, g.f)
			g.attrStd[c] = make([]float64, g.f)
		}
		for v := 0; v < g.n; v++ {
			c := g.class[v]
			counts[c]++
			for j := 0; j < g.f; j++ {
				g.attrMean[c][j] += attrAvg[v][j]
			}
		}
		for c := 0; c < k; c++ {
			if counts[c] == 0 {
				continue
			}
			for j := 0; j < g.f; j++ {
				g.attrMean[c][j] /= counts[c]
			}
		}
		for v := 0; v < g.n; v++ {
			c := g.class[v]
			for j := 0; j < g.f; j++ {
				d := attrAvg[v][j] - g.attrMean[c][j]
				g.attrStd[c][j] += d * d
			}
		}
		for c := 0; c < k; c++ {
			if counts[c] == 0 {
				continue
			}
			for j := 0; j < g.f; j++ {
				g.attrStd[c][j] = math.Sqrt(g.attrStd[c][j]/counts[c]) + 1e-6
			}
		}
	}
	return nil
}

func (g *Gen) samplePref(c int) int {
	row := g.classPref[c]
	total := row[len(row)-1]
	u := g.rng.Float64() * total
	i := sort.SearchFloat64s(row[1:], u)
	if i >= len(row)-1 {
		i = len(row) - 2
	}
	return i
}

func (g *Gen) sampleMember(c int) int {
	members := g.classNodes[c]
	if len(members) == 0 {
		return g.rng.Intn(g.n)
	}
	cum := g.classCum[c]
	u := g.rng.Float64() * cum[len(cum)-1]
	i := sort.SearchFloat64s(cum[1:], u)
	if i >= len(members) {
		i = len(members) - 1
	}
	return members[i]
}

// Generate produces T independent snapshots with class-structured topology
// and per-class attribute draws.
func (g *Gen) Generate(t int) (*dyngraph.Sequence, error) {
	if g.class == nil {
		return nil, fmt.Errorf("gencat: Generate before Fit")
	}
	if t <= 0 {
		return nil, fmt.Errorf("gencat: T must be positive, got %d", t)
	}
	out := dyngraph.NewSequence(g.n, g.f, t)
	for tt := 0; tt < t; tt++ {
		s := out.At(tt)
		budget := int(g.edgeTarget)
		for e := 0; e < budget*2 && s.NumEdges() < budget; e++ {
			// choose source by global degree weight via class tables
			cu := g.rng.Intn(g.cfg.Classes)
			u := g.sampleMember(cu)
			cv := g.samplePref(g.class[u])
			v := g.sampleMember(cv)
			if u != v {
				s.AddEdge(u, v)
			}
		}
		if g.f > 0 {
			for v := 0; v < g.n; v++ {
				c := g.class[v]
				row := s.X.Row(v)
				for j := 0; j < g.f; j++ {
					row[j] = g.attrMean[c][j] + g.attrStd[c][j]*g.rng.NormFloat64()
				}
			}
		}
	}
	return out, nil
}
