// Package baselines defines the common interface implemented by the six
// comparison generators of the paper's evaluation (TagGen, TGGAN, TIGGER,
// Dymond, GRAN, GenCAT) plus the Normal attribute baseline. Each lives in
// its own subpackage; this package holds the shared contract.
package baselines

import "vrdag/internal/dyngraph"

// Generator is a dynamic-graph generator that learns from an observed
// sequence and synthesises new sequences of a requested length.
type Generator interface {
	// Name returns the baseline's display name as used in the paper.
	Name() string
	// Fit estimates the generator's parameters from an observed sequence.
	Fit(g *dyngraph.Sequence) error
	// Generate synthesises a new sequence with T snapshots. Fit must have
	// been called first.
	Generate(t int) (*dyngraph.Sequence, error)
}
