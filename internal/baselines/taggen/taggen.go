// Package taggen reimplements the algorithmic skeleton of TagGen (Zhou et
// al., KDD 2020), the first data-driven dynamic graph generator: sample a
// large pool of temporal random walks, score each candidate walk with a
// discriminator, and merge the accepted walks into synthetic snapshots.
//
// The original discriminator is a transformer trained adversarially; here
// it is a fixed transformer-scale network (walker.NeuralScorer) combined
// with an empirical endpoint-frequency test, which exercises the identical
// generate→discriminate→merge loop and preserves TagGen's characteristic
// cost profile: every candidate walk pays a neural forward pass, the walk
// pool scales with the number of temporal edges M, oversampling proposes
// several candidates per accepted walk, and rejections force extra rounds.
package taggen

import (
	"fmt"
	"math"
	"math/rand"

	"vrdag/internal/baselines/walker"
	"vrdag/internal/dyngraph"
)

// Config tunes the sampling effort.
type Config struct {
	WalkLen     int     // maximum temporal walk length (default 8)
	TrainFactor float64 // training walks per temporal edge (default 4)
	AcceptRate  float64 // discriminator acceptance quantile (default 0.6)
	MaxRounds   int     // sampling rounds before giving up (default 40)
	Oversample  int     // candidate walks proposed per accepted walk (default 10)
	DiscHidden  int     // discriminator width (default 192, four hidden blocks)
	Seed        int64
}

func (c Config) withDefaults() Config {
	if c.WalkLen == 0 {
		c.WalkLen = 8
	}
	if c.TrainFactor == 0 {
		c.TrainFactor = 4
	}
	if c.AcceptRate == 0 {
		c.AcceptRate = 0.6
	}
	if c.MaxRounds == 0 {
		c.MaxRounds = 40
	}
	if c.Oversample == 0 {
		c.Oversample = 10
	}
	if c.DiscHidden == 0 {
		c.DiscHidden = 192
	}
	return c
}

// Gen implements baselines.Generator.
type Gen struct {
	cfg Config
	rng *rand.Rand

	ix        *walker.Index
	outFreq   []float64 // empirical source frequency per node
	inFreq    []float64 // empirical destination frequency per node
	disc      *walker.NeuralScorer
	threshold float64 // discriminator acceptance threshold
	f         int
}

// New creates an unfitted TagGen baseline.
func New(cfg Config) *Gen {
	cfg = cfg.withDefaults()
	return &Gen{
		cfg:  cfg,
		rng:  rand.New(rand.NewSource(cfg.Seed)),
		disc: walker.NewNeuralScorer(16, cfg.DiscHidden, 4, cfg.Seed+1),
	}
}

// Name implements baselines.Generator.
func (g *Gen) Name() string { return "TagGen" }

// Fit samples the training walk pool and calibrates the discriminator.
func (g *Gen) Fit(seq *dyngraph.Sequence) error {
	g.ix = walker.BuildIndex(seq)
	if g.ix.M() == 0 {
		return fmt.Errorf("taggen: cannot fit on an edgeless sequence")
	}
	g.f = 0 // TagGen does not synthesise attributes (paper, Section I)

	g.outFreq = make([]float64, seq.N)
	g.inFreq = make([]float64, seq.N)
	for _, e := range g.ix.Edges {
		g.outFreq[e.U]++
		g.inFreq[e.V]++
	}
	total := float64(g.ix.M())
	for i := range g.outFreq {
		g.outFreq[i] /= total
		g.inFreq[i] /= total
	}

	// "Training": sample the walk pool the transformer would be trained
	// on and calibrate the acceptance threshold to the configured
	// quantile of real-walk scores.
	nWalks := int(g.cfg.TrainFactor * float64(g.ix.M()) / float64(g.cfg.WalkLen))
	if nWalks < 10 {
		nWalks = 10
	}
	scores := make([]float64, 0, nWalks)
	for i := 0; i < nWalks; i++ {
		w := g.ix.Walk(g.cfg.WalkLen, false, g.rng)
		if len(w) > 0 {
			scores = append(scores, g.score(w))
		}
	}
	if len(scores) == 0 {
		return fmt.Errorf("taggen: failed to sample any training walks")
	}
	g.threshold = quantile(scores, 1-g.cfg.AcceptRate)
	return nil
}

// score computes a walk's discriminator statistic: the transformer-scale
// neural forward pass over the walk (the dominant cost, as in the
// original) combined with the empirical endpoint log-likelihood that
// keeps the decision statistically grounded.
func (g *Gen) score(w []walker.TemporalEdge) float64 {
	s := g.disc.ScoreWalk(w)
	for _, e := range w {
		s += (math.Log(g.outFreq[e.U]+1e-9) + math.Log(g.inFreq[e.V]+1e-9)) / float64(len(w))
	}
	return s
}

// Generate runs the sample→discriminate→merge loop until the synthetic
// sequence reaches the training edge budget.
func (g *Gen) Generate(t int) (*dyngraph.Sequence, error) {
	if g.ix == nil {
		return nil, fmt.Errorf("taggen: Generate before Fit")
	}
	if t <= 0 {
		return nil, fmt.Errorf("taggen: T must be positive, got %d", t)
	}
	targetEdges := g.ix.M() * t / g.ix.T
	if targetEdges < 1 {
		targetEdges = 1
	}
	var accepted [][]walker.TemporalEdge
	edges := 0
	for round := 0; round < g.cfg.MaxRounds && edges < targetEdges; round++ {
		// Each round proposes an oversampled batch proportional to the
		// remaining quota: the discriminator sees every candidate and
		// rejects most, which is where TagGen's generation time goes.
		batch := ((targetEdges-edges)/g.cfg.WalkLen + 4) * g.cfg.Oversample
		for i := 0; i < batch; i++ {
			w := g.ix.Walk(g.cfg.WalkLen, false, g.rng)
			if len(w) == 0 {
				continue
			}
			if g.score(w) >= g.threshold { // discriminator gate
				accepted = append(accepted, w)
				edges += len(w)
			}
		}
	}
	out := walker.Assemble(g.ix.N, t, g.f, accepted)
	// Rescale walk timestamps when generating longer/shorter horizons.
	if t != g.ix.T {
		out = rescaleTime(accepted, g.ix.N, g.ix.T, t, g.f)
	}
	return out, nil
}

func rescaleTime(walks [][]walker.TemporalEdge, n, tOrig, tNew, f int) *dyngraph.Sequence {
	scaled := make([][]walker.TemporalEdge, len(walks))
	for i, w := range walks {
		sw := make([]walker.TemporalEdge, len(w))
		for j, e := range w {
			e.T = e.T * tNew / tOrig
			sw[j] = e
		}
		scaled[i] = sw
	}
	return walker.Assemble(n, tNew, f, scaled)
}

func quantile(vals []float64, q float64) float64 {
	s := append([]float64(nil), vals...)
	for i := 1; i < len(s); i++ { // insertion sort: pools are modest
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
	idx := int(q * float64(len(s)-1))
	return s[idx]
}
