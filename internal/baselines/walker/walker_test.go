package walker

import (
	"math/rand"
	"testing"
	"testing/quick"

	"vrdag/internal/dyngraph"
)

func seq(t *testing.T) *dyngraph.Sequence {
	t.Helper()
	g := dyngraph.NewSequence(6, 0, 3)
	g.At(0).AddEdge(0, 1)
	g.At(0).AddEdge(1, 2)
	g.At(1).AddEdge(2, 3)
	g.At(1).AddEdge(1, 2)
	g.At(2).AddEdge(3, 4)
	g.At(2).AddEdge(4, 5)
	return g
}

func TestBuildIndex(t *testing.T) {
	ix := BuildIndex(seq(t))
	if ix.M() != 6 {
		t.Fatalf("M = %d", ix.M())
	}
	if ix.N != 6 || ix.T != 3 {
		t.Fatalf("N=%d T=%d", ix.N, ix.T)
	}
	// edges sorted by time
	for i := 1; i < len(ix.Edges); i++ {
		if ix.Edges[i].T < ix.Edges[i-1].T {
			t.Fatal("edges must be time-sorted")
		}
	}
}

func TestRandomEdgeEmptyGraph(t *testing.T) {
	ix := BuildIndex(dyngraph.NewSequence(3, 0, 2))
	if _, err := ix.RandomEdge(rand.New(rand.NewSource(1))); err == nil {
		t.Fatal("empty graph must error")
	}
}

func TestWalkTimeMonotone(t *testing.T) {
	ix := BuildIndex(seq(t))
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 200; i++ {
		w := ix.Walk(5, false, rng)
		for j := 1; j < len(w); j++ {
			if w[j].T < w[j-1].T {
				t.Fatalf("non-monotone walk times: %v", w)
			}
			if w[j].U != w[j-1].V {
				t.Fatalf("walk not connected: %v", w)
			}
		}
	}
}

func TestWalkStrictTimeValidity(t *testing.T) {
	ix := BuildIndex(seq(t))
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 200; i++ {
		w := ix.Walk(5, true, rng)
		for j := 1; j < len(w); j++ {
			if w[j].T <= w[j-1].T {
				t.Fatalf("strict walk must have strictly increasing times: %v", w)
			}
		}
	}
}

func TestWalkRespectsMaxLen(t *testing.T) {
	// A long chain graph allows long walks, so maxLen must bind.
	g := dyngraph.NewSequence(20, 0, 1)
	for i := 0; i+1 < 20; i++ {
		g.At(0).AddEdge(i, i+1)
	}
	ix := BuildIndex(g)
	rng := rand.New(rand.NewSource(4))
	for i := 0; i < 50; i++ {
		if w := ix.Walk(3, false, rng); len(w) > 3 {
			t.Fatalf("walk length %d exceeds max 3", len(w))
		}
	}
}

func TestTransitionModelWalks(t *testing.T) {
	ix := BuildIndex(seq(t))
	tm := FitTransitions(ix)
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 100; i++ {
		w := tm.Walk(4, rng)
		if len(w) == 0 {
			t.Fatal("transition walk must start somewhere")
		}
		for j := 1; j < len(w); j++ {
			if w[j].U != w[j-1].V {
				t.Fatalf("transition walk not connected: %v", w)
			}
			if w[j].T < w[j-1].T {
				t.Fatalf("clamped times must be monotone: %v", w)
			}
		}
	}
}

func TestAssembleClampsTimes(t *testing.T) {
	walks := [][]TemporalEdge{{{U: 0, V: 1, T: -5}, {U: 1, V: 2, T: 99}}}
	g := Assemble(3, 2, 0, walks)
	if !g.At(0).HasEdge(0, 1) {
		t.Fatal("negative time must clamp to snapshot 0")
	}
	if !g.At(1).HasEdge(1, 2) {
		t.Fatal("overflow time must clamp to last snapshot")
	}
}

// Property: every edge produced by any walk exists in the source graph at
// the walk's timestamp.
func TestWalkEdgesAreReal(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := dyngraph.NewSequence(8, 0, 4)
		for tt := 0; tt < 4; tt++ {
			for e := 0; e < 10; e++ {
				g.At(tt).AddEdge(rng.Intn(8), rng.Intn(8))
			}
		}
		ix := BuildIndex(g)
		if ix.M() == 0 {
			return true
		}
		for i := 0; i < 20; i++ {
			for _, e := range ix.Walk(6, false, rng) {
				if !g.At(e.T).HasEdge(e.U, e.V) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}
