// Package walker provides the temporal random-walk machinery shared by the
// walk-based baselines (TagGen, TGGAN, TIGGER). A temporal walk is a
// sequence of edges with non-decreasing timestamps; the samplers here
// mirror the sampling strategies those papers build on.
package walker

import (
	"fmt"
	"math/rand"
	"sort"

	"vrdag/internal/dyngraph"
)

// TemporalEdge is a directed edge stamped with its snapshot index.
type TemporalEdge struct {
	U, V, T int
}

// Index holds a dynamic graph flattened into time-sorted temporal edges
// with per-node outgoing adjacency, supporting O(log E) successor queries.
type Index struct {
	N, T  int
	Edges []TemporalEdge
	// outByNode[u] lists indices into Edges of u's outgoing temporal
	// edges, sorted by time.
	outByNode [][]int
}

// BuildIndex flattens a sequence into a temporal edge index.
func BuildIndex(g *dyngraph.Sequence) *Index {
	idx := &Index{N: g.N, T: g.T(), outByNode: make([][]int, g.N)}
	for t, s := range g.Snapshots {
		for u := 0; u < s.N; u++ {
			for _, v := range s.Out[u] {
				idx.Edges = append(idx.Edges, TemporalEdge{U: u, V: v, T: t})
			}
		}
	}
	sort.Slice(idx.Edges, func(a, b int) bool {
		if idx.Edges[a].T != idx.Edges[b].T {
			return idx.Edges[a].T < idx.Edges[b].T
		}
		if idx.Edges[a].U != idx.Edges[b].U {
			return idx.Edges[a].U < idx.Edges[b].U
		}
		return idx.Edges[a].V < idx.Edges[b].V
	})
	for i, e := range idx.Edges {
		idx.outByNode[e.U] = append(idx.outByNode[e.U], i)
	}
	return idx
}

// M returns the number of temporal edges.
func (ix *Index) M() int { return len(ix.Edges) }

// RandomEdge returns a uniformly random temporal edge.
func (ix *Index) RandomEdge(rng *rand.Rand) (TemporalEdge, error) {
	if len(ix.Edges) == 0 {
		return TemporalEdge{}, fmt.Errorf("walker: empty graph")
	}
	return ix.Edges[rng.Intn(len(ix.Edges))], nil
}

// successors returns the indices of u's outgoing edges with time >= minT
// (TagGen-style non-decreasing walks) or time > minT when strict (TGGAN's
// time-validity constraint).
func (ix *Index) successors(u, minT int, strict bool) []int {
	list := ix.outByNode[u]
	lo := sort.Search(len(list), func(i int) bool {
		t := ix.Edges[list[i]].T
		if strict {
			return t > minT
		}
		return t >= minT
	})
	return list[lo:]
}

// Walk samples one temporal random walk of at most maxLen edges starting
// from a uniformly random edge. strict enforces strictly increasing times.
func (ix *Index) Walk(maxLen int, strict bool, rng *rand.Rand) []TemporalEdge {
	start, err := ix.RandomEdge(rng)
	if err != nil {
		return nil
	}
	walk := []TemporalEdge{start}
	cur := start
	for len(walk) < maxLen {
		succ := ix.successors(cur.V, cur.T, strict)
		if len(succ) == 0 {
			break
		}
		cur = ix.Edges[succ[rng.Intn(len(succ))]]
		walk = append(walk, cur)
	}
	return walk
}

// TransitionModel is the first-order model TIGGER fits once before
// generation: empirical start distribution over temporal edges and
// per-node successor counts.
type TransitionModel struct {
	ix *Index
	// succCum[u] is the cumulative distribution over u's outgoing edges
	// (time-agnostic; times are re-sampled during generation).
	succCum [][]float64
}

// FitTransitions builds the transition model from an index.
func FitTransitions(ix *Index) *TransitionModel {
	tm := &TransitionModel{ix: ix, succCum: make([][]float64, ix.N)}
	for u := 0; u < ix.N; u++ {
		list := ix.outByNode[u]
		cum := make([]float64, len(list)+1)
		for i := range list {
			cum[i+1] = cum[i] + 1
		}
		tm.succCum[u] = cum
	}
	return tm
}

// Walk samples a pre-trained first-order walk (TIGGER-style: no per-step
// temporal filtering, so it is much cheaper than Index.Walk).
func (tm *TransitionModel) Walk(maxLen int, rng *rand.Rand) []TemporalEdge {
	start, err := tm.ix.RandomEdge(rng)
	if err != nil {
		return nil
	}
	walk := []TemporalEdge{start}
	cur := start
	for len(walk) < maxLen {
		list := tm.ix.outByNode[cur.V]
		if len(list) == 0 {
			break
		}
		next := tm.ix.Edges[list[rng.Intn(len(list))]]
		// Clamp time monotonicity after the fact (cheap approximation of
		// the temporal point process).
		if next.T < cur.T {
			next.T = cur.T
		}
		walk = append(walk, next)
		cur = next
	}
	return walk
}

// Assemble merges accepted walks into a sequence: each walk edge lands in
// the snapshot of its timestamp (clamped to [0, T)).
func Assemble(n, t int, f int, walks [][]TemporalEdge) *dyngraph.Sequence {
	g := dyngraph.NewSequence(n, f, t)
	for _, w := range walks {
		for _, e := range w {
			tt := e.T
			if tt < 0 {
				tt = 0
			}
			if tt >= t {
				tt = t - 1
			}
			g.Snapshots[tt].AddEdge(e.U, e.V)
		}
	}
	return g
}
