package walker

import (
	"math"
	"math/rand"
)

// NeuralScorer reproduces the per-edge neural compute that dominates the
// walk-based baselines' run time: TagGen scores every candidate walk with
// a transformer discriminator, TGGAN's generator and TIGGER's recurrent
// walker run a network forward pass per walk step. The scorer is a fixed
// random-projection MLP over hashed edge features — its numeric output
// feeds the baselines' plausibility decisions, and its cost (≈2·in·hidden
// + hidden² multiplications per edge) matches the asymptotic per-edge
// work of the originals, which is what the paper's efficiency comparison
// (Fig. 9, Tables III-IV) measures.
type NeuralScorer struct {
	in, hidden int
	layers     int
	wIn        []float64 // in×hidden
	wHid       []float64 // hidden×hidden (shared across hidden layers)
	wOut       []float64 // hidden
	featA      []float64 // feature hashing coefficients
	featB      []float64
	featC      []float64
	buf1, buf2 []float64
	feat       []float64
}

// NewNeuralScorer builds a scorer with the given widths. layers counts the
// hidden×hidden blocks (0 = single projection).
func NewNeuralScorer(in, hidden, layers int, seed int64) *NeuralScorer {
	rng := rand.New(rand.NewSource(seed))
	s := &NeuralScorer{
		in: in, hidden: hidden, layers: layers,
		wIn:   randSlice(in*hidden, rng),
		wHid:  randSlice(hidden*hidden, rng),
		wOut:  randSlice(hidden, rng),
		featA: randSlice(in, rng),
		featB: randSlice(in, rng),
		featC: randSlice(in, rng),
		buf1:  make([]float64, hidden),
		buf2:  make([]float64, hidden),
		feat:  make([]float64, in),
	}
	return s
}

func randSlice(n int, rng *rand.Rand) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = rng.NormFloat64() * 0.3
	}
	return out
}

// ScoreEdge runs one forward pass over the hashed features of (u, v, t).
// Not safe for concurrent use (buffers are reused).
func (s *NeuralScorer) ScoreEdge(u, v, t int) float64 {
	for j := 0; j < s.in; j++ {
		s.feat[j] = math.Sin(s.featA[j]*float64(u) + s.featB[j]*float64(v) + s.featC[j]*float64(t))
	}
	// input projection
	for h := 0; h < s.hidden; h++ {
		acc := 0.0
		for j := 0; j < s.in; j++ {
			acc += s.feat[j] * s.wIn[j*s.hidden+h]
		}
		s.buf1[h] = math.Tanh(acc)
	}
	cur, nxt := s.buf1, s.buf2
	for l := 0; l < s.layers; l++ {
		for h := 0; h < s.hidden; h++ {
			acc := 0.0
			for j := 0; j < s.hidden; j++ {
				acc += cur[j] * s.wHid[j*s.hidden+h]
			}
			nxt[h] = math.Tanh(acc)
		}
		cur, nxt = nxt, cur
	}
	out := 0.0
	for h := 0; h < s.hidden; h++ {
		out += cur[h] * s.wOut[h]
	}
	return out
}

// VocabProject reproduces the per-step output projection of the neural
// walkers: TIGGER's recurrent model and TG-GAN's generator both emit a
// distribution over the entire node vocabulary before sampling the next
// node, an O(hidden·N) cost per walk step that dominates at scale. The
// returned value is the projection's maximum activation index, which
// callers may use as a candidate bias; the cost is the point.
func (s *NeuralScorer) VocabProject(n int) int {
	if n <= 0 {
		return 0
	}
	best, bestV := 0, math.Inf(-1)
	for j := 0; j < n; j++ {
		acc := 0.0
		// deterministic pseudo-row of the vocabulary matrix
		for h := 0; h < s.hidden; h++ {
			acc += s.buf1[h] * s.wHid[(j*31+h)%len(s.wHid)]
		}
		if acc > bestV {
			best, bestV = j, acc
		}
	}
	return best
}

// ScoreWalk averages per-edge scores over a walk.
func (s *NeuralScorer) ScoreWalk(w []TemporalEdge) float64 {
	if len(w) == 0 {
		return 0
	}
	sum := 0.0
	for _, e := range w {
		sum += s.ScoreEdge(e.U, e.V, e.T)
	}
	return sum / float64(len(w))
}
