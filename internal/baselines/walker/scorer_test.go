package walker

import (
	"math"
	"testing"
)

func TestNeuralScorerDeterministic(t *testing.T) {
	a := NewNeuralScorer(8, 16, 2, 7)
	b := NewNeuralScorer(8, 16, 2, 7)
	for _, e := range [][3]int{{0, 1, 0}, {5, 2, 3}, {100, 7, 9}} {
		if a.ScoreEdge(e[0], e[1], e[2]) != b.ScoreEdge(e[0], e[1], e[2]) {
			t.Fatal("same seed must give identical scores")
		}
	}
	c := NewNeuralScorer(8, 16, 2, 8)
	if a.ScoreEdge(0, 1, 0) == c.ScoreEdge(0, 1, 0) {
		t.Fatal("different seeds should almost surely differ")
	}
}

func TestNeuralScorerFinite(t *testing.T) {
	s := NewNeuralScorer(16, 64, 4, 1)
	for u := 0; u < 50; u++ {
		v := s.ScoreEdge(u*997, u*13, u)
		if math.IsNaN(v) || math.IsInf(v, 0) {
			t.Fatalf("non-finite score at %d: %v", u, v)
		}
	}
}

func TestNeuralScorerDiscriminates(t *testing.T) {
	// Different edges should generally score differently (the scorer's
	// output feeds real accept/reject decisions).
	s := NewNeuralScorer(16, 32, 1, 2)
	seen := map[float64]bool{}
	for u := 0; u < 20; u++ {
		seen[s.ScoreEdge(u, u+1, 0)] = true
	}
	if len(seen) < 15 {
		t.Fatalf("scorer nearly constant: %d distinct values of 20", len(seen))
	}
}

func TestScoreWalkAveragesEdges(t *testing.T) {
	s := NewNeuralScorer(8, 16, 1, 3)
	if s.ScoreWalk(nil) != 0 {
		t.Fatal("empty walk must score 0")
	}
	e := TemporalEdge{U: 1, V: 2, T: 3}
	single := s.ScoreWalk([]TemporalEdge{e})
	double := s.ScoreWalk([]TemporalEdge{e, e})
	if math.Abs(single-double) > 1e-12 {
		t.Fatal("repeated edge must not change the mean score")
	}
}

func TestVocabProjectBounds(t *testing.T) {
	s := NewNeuralScorer(8, 16, 1, 4)
	s.ScoreEdge(1, 2, 3) // populate buffers
	for _, n := range []int{1, 7, 100} {
		got := s.VocabProject(n)
		if got < 0 || got >= n {
			t.Fatalf("VocabProject(%d) = %d out of range", n, got)
		}
	}
	if s.VocabProject(0) != 0 {
		t.Fatal("n=0 must return 0")
	}
}
