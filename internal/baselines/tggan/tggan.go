// Package tggan reimplements the algorithmic skeleton of TG-GAN (Zhang et
// al., WWW 2021): truncated temporal random walks with strict time-validity
// constraints (timestamps must strictly increase along a walk). Compared to
// TagGen, walks are shorter and there is no discriminate-and-resample loop,
// which makes both training and generation cheaper — the ordering the
// paper's Fig. 9 reports.
package tggan

import (
	"fmt"
	"math/rand"

	"vrdag/internal/baselines/walker"
	"vrdag/internal/dyngraph"
)

// Config tunes the walk sampling.
type Config struct {
	WalkLen     int     // truncation length (default 4)
	TrainFactor float64 // training walks per temporal edge (default 1)
	GenHidden   int     // generator network width (default 128)
	Seed        int64
}

func (c Config) withDefaults() Config {
	if c.WalkLen == 0 {
		c.WalkLen = 4
	}
	if c.TrainFactor == 0 {
		c.TrainFactor = 1
	}
	if c.GenHidden == 0 {
		c.GenHidden = 128
	}
	return c
}

// Gen implements baselines.Generator.
type Gen struct {
	cfg Config
	rng *rand.Rand
	ix  *walker.Index
	net *walker.NeuralScorer // stand-in for the per-step generator forward
}

// New creates an unfitted TG-GAN baseline.
func New(cfg Config) *Gen {
	cfg = cfg.withDefaults()
	return &Gen{
		cfg: cfg,
		rng: rand.New(rand.NewSource(cfg.Seed)),
		net: walker.NewNeuralScorer(16, cfg.GenHidden, 2, cfg.Seed+1),
	}
}

// Name implements baselines.Generator.
func (g *Gen) Name() string { return "TGGAN" }

// Fit indexes the sequence and samples the (smaller) training walk pool.
func (g *Gen) Fit(seq *dyngraph.Sequence) error {
	g.ix = walker.BuildIndex(seq)
	if g.ix.M() == 0 {
		return fmt.Errorf("tggan: cannot fit on an edgeless sequence")
	}
	// Adversarial pre-training stand-in: sample the truncated walk pool
	// once (cheapest training of the walk family).
	nWalks := int(g.cfg.TrainFactor * float64(g.ix.M()) / float64(g.cfg.WalkLen))
	for i := 0; i < nWalks; i++ {
		w := g.ix.Walk(g.cfg.WalkLen, true, g.rng)
		g.net.ScoreWalk(w) // generator/critic forward per training walk
	}
	return nil
}

// Generate samples truncated time-valid walks until the edge budget is
// met, then merges them.
func (g *Gen) Generate(t int) (*dyngraph.Sequence, error) {
	if g.ix == nil {
		return nil, fmt.Errorf("tggan: Generate before Fit")
	}
	if t <= 0 {
		return nil, fmt.Errorf("tggan: T must be positive, got %d", t)
	}
	targetEdges := g.ix.M() * t / g.ix.T
	if targetEdges < 1 {
		targetEdges = 1
	}
	var walks [][]walker.TemporalEdge
	edges := 0
	guard := 0
	for edges < targetEdges && guard < targetEdges*20 {
		guard++
		w := g.ix.Walk(g.cfg.WalkLen, true, g.rng)
		if len(w) == 0 {
			continue
		}
		// Per-step generator forward plus the output projection over the
		// node vocabulary (the generator emits next-node logits).
		for _, e := range w {
			g.net.ScoreEdge(e.U, e.V, e.T)
			g.net.VocabProject(g.ix.N)
		}
		if t != g.ix.T {
			for j := range w {
				w[j].T = w[j].T * t / g.ix.T
			}
		}
		walks = append(walks, w)
		edges += len(w)
	}
	return walker.Assemble(g.ix.N, t, 0, walks), nil
}
