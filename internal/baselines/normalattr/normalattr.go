// Package normalattr implements the "Normal" attribute baseline of the
// paper's Fig. 3: node attributes are drawn i.i.d. from per-dimension
// normal distributions whose mean and variance are estimated from the
// ground-truth data. It is an attribute-generation method only, so the
// synthetic sequence reuses the observed topology — isolating exactly the
// attribute-quality comparison the figure makes.
package normalattr

import (
	"fmt"
	"math"
	"math/rand"

	"vrdag/internal/dyngraph"
)

// Config holds the RNG seed.
type Config struct {
	Seed int64
}

// Gen implements baselines.Generator.
type Gen struct {
	cfg  Config
	rng  *rand.Rand
	ref  *dyngraph.Sequence
	mean []float64
	std  []float64
}

// New creates an unfitted Normal baseline.
func New(cfg Config) *Gen {
	return &Gen{cfg: cfg, rng: rand.New(rand.NewSource(cfg.Seed))}
}

// Name implements baselines.Generator.
func (g *Gen) Name() string { return "Normal" }

// Fit estimates per-dimension attribute means and variances.
func (g *Gen) Fit(seq *dyngraph.Sequence) error {
	if seq.T() == 0 {
		return fmt.Errorf("normalattr: empty sequence")
	}
	if seq.F == 0 {
		return fmt.Errorf("normalattr: sequence has no attributes")
	}
	g.ref = seq.Clone()
	g.mean = make([]float64, seq.F)
	g.std = make([]float64, seq.F)
	count := float64(seq.N * seq.T())
	for _, s := range seq.Snapshots {
		for i := 0; i < seq.N; i++ {
			row := s.X.Row(i)
			for j := 0; j < seq.F; j++ {
				g.mean[j] += row[j]
			}
		}
	}
	for j := range g.mean {
		g.mean[j] /= count
	}
	for _, s := range seq.Snapshots {
		for i := 0; i < seq.N; i++ {
			row := s.X.Row(i)
			for j := 0; j < seq.F; j++ {
				d := row[j] - g.mean[j]
				g.std[j] += d * d
			}
		}
	}
	for j := range g.std {
		g.std[j] = math.Sqrt(g.std[j]/count) + 1e-9
	}
	return nil
}

// Generate reuses the fitted topology and replaces every attribute with an
// independent normal draw.
func (g *Gen) Generate(t int) (*dyngraph.Sequence, error) {
	if g.ref == nil {
		return nil, fmt.Errorf("normalattr: Generate before Fit")
	}
	if t <= 0 {
		return nil, fmt.Errorf("normalattr: T must be positive, got %d", t)
	}
	out := dyngraph.NewSequence(g.ref.N, g.ref.F, t)
	for tt := 0; tt < t; tt++ {
		src := g.ref.At(tt % g.ref.T())
		s := out.At(tt)
		for u := 0; u < src.N; u++ {
			for _, v := range src.Out[u] {
				s.AddEdge(u, v)
			}
		}
		for i := 0; i < g.ref.N; i++ {
			row := s.X.Row(i)
			for j := 0; j < g.ref.F; j++ {
				row[j] = g.mean[j] + g.std[j]*g.rng.NormFloat64()
			}
		}
	}
	return out, nil
}
