package experiments

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"vrdag/internal/datasets"
)

// tiny returns options that keep experiment tests fast.
func tiny() Options { return Options{Scale: 0.015, Seed: 5, Epochs: 2} }

func finite(v float64) bool { return !math.IsNaN(v) && !math.IsInf(v, 0) }

func TestTable1EmailIncludesAllMethods(t *testing.T) {
	rows, err := Table1(datasets.Email, tiny())
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]bool{"GRAN": false, "GenCAT": false, "TagGen": false,
		"Dymond": false, "TGGAN": false, "TIGGER": false, "VRDAG": false}
	for _, r := range rows {
		want[r.Method] = true
		if r.Err == nil {
			rep := r.Report
			for _, v := range []float64{rep.InDegMMD, rep.OutDegMMD, rep.ClusMMD,
				rep.InPLE, rep.OutPLE, rep.Wedge, rep.NC, rep.LCC} {
				if !finite(v) || v < 0 {
					t.Fatalf("%s: bad metric value %v", r.Method, v)
				}
			}
		}
	}
	for m, seen := range want {
		if !seen {
			t.Fatalf("method %s missing from Table 1", m)
		}
	}
	var buf bytes.Buffer
	PrintTable1(&buf, rows)
	if !strings.Contains(buf.String(), "VRDAG") {
		t.Fatal("printout missing VRDAG row")
	}
}

func TestTable1ExcludesDymondOffEmail(t *testing.T) {
	rows, err := Table1(datasets.Bitcoin, tiny())
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if r.Method == "Dymond" {
			t.Fatal("Dymond must only run on Email (paper protocol)")
		}
	}
}

func TestTable2(t *testing.T) {
	rows, err := Table2(tiny())
	if err != nil {
		t.Fatal(err)
	}
	// 2 datasets × 3 methods
	if len(rows) != 6 {
		t.Fatalf("expected 6 rows, got %d", len(rows))
	}
	for _, r := range rows {
		if !finite(r.MAE) || r.MAE < 0 {
			t.Fatalf("bad MAE for %s/%s: %v", r.Dataset, r.Method, r.MAE)
		}
	}
	var buf bytes.Buffer
	PrintTable2(&buf, rows)
	if !strings.Contains(buf.String(), "guarantee") {
		t.Fatal("printout missing guarantee rows")
	}
}

func TestFigure3CoversAllDatasets(t *testing.T) {
	rows, err := Figure3(tiny())
	if err != nil {
		t.Fatal(err)
	}
	seen := map[string]int{}
	for _, r := range rows {
		seen[r.Dataset]++
		if !finite(r.JSD) || !finite(r.EMD) || r.JSD < 0 || r.EMD < 0 {
			t.Fatalf("bad row %+v", r)
		}
	}
	for _, ds := range datasets.AllNames() {
		if seen[ds] != 3 {
			t.Fatalf("dataset %s has %d rows, want 3", ds, seen[ds])
		}
	}
}

func TestFigures4to6SeriesShape(t *testing.T) {
	series, err := Figures4to6(tiny())
	if err != nil {
		t.Fatal(err)
	}
	// 3 datasets × 3 metrics × 3 lines
	if len(series) != 27 {
		t.Fatalf("expected 27 series, got %d", len(series))
	}
	for _, s := range series {
		if len(s.Values) == 0 {
			t.Fatalf("empty series: %s/%s/%s", s.Dataset, s.Metric, s.Line)
		}
		for _, v := range s.Values {
			if !finite(v) || v < 0 {
				t.Fatalf("bad value in %s/%s/%s: %v", s.Dataset, s.Metric, s.Line, v)
			}
		}
	}
	var buf bytes.Buffer
	PrintSeries(&buf, series)
	if !strings.Contains(buf.String(), "coreness") {
		t.Fatal("printout missing coreness series")
	}
}

func TestFigures7to8(t *testing.T) {
	series, err := Figures7to8(tiny())
	if err != nil {
		t.Fatal(err)
	}
	// 3 datasets × 2 metrics × 2 lines
	if len(series) != 12 {
		t.Fatalf("expected 12 series, got %d", len(series))
	}
}

func TestFigure9OrderingVRDAGFastestGeneration(t *testing.T) {
	rows, err := Figure9(Options{Scale: 0.015, Seed: 6, Epochs: 2})
	if err != nil {
		t.Fatal(err)
	}
	gen := map[string]float64{}
	count := map[string]int{}
	for _, r := range rows {
		if r.Err != nil {
			t.Fatalf("%s/%s: %v", r.Dataset, r.Method, r.Err)
		}
		gen[r.Method] += r.GenSec
		count[r.Method]++
	}
	// The paper's headline: VRDAG generation is faster than every
	// walk-based baseline (by orders of magnitude at full scale).
	if gen["VRDAG"] >= gen["TagGen"] {
		t.Fatalf("VRDAG generation (%gs) must beat TagGen (%gs)", gen["VRDAG"], gen["TagGen"])
	}
	var buf bytes.Buffer
	PrintTimings(&buf, rows)
	if !strings.Contains(buf.String(), "Generate(s)") {
		t.Fatal("bad printout")
	}
}

func TestScalabilityRows(t *testing.T) {
	rows, err := Scalability(Options{Scale: 1, Seed: 7, Epochs: 2}, []int{1000, 4000})
	if err != nil {
		t.Fatal(err)
	}
	// 2 edge targets × 4 methods
	if len(rows) != 8 {
		t.Fatalf("expected 8 rows, got %d", len(rows))
	}
	var buf bytes.Buffer
	PrintScale(&buf, rows)
	if !strings.Contains(buf.String(), "#Edges") {
		t.Fatal("bad printout")
	}
}

func TestFigure10Rows(t *testing.T) {
	rows, err := Figure10(tiny())
	if err != nil {
		t.Fatal(err)
	}
	// 3 datasets × 3 methods
	if len(rows) != 9 {
		t.Fatalf("expected 9 rows, got %d", len(rows))
	}
	for _, r := range rows {
		if r.LinkF1 < 0 || r.LinkF1 > 1 || !finite(r.AttrRMSE) {
			t.Fatalf("bad row %+v", r)
		}
	}
	var buf bytes.Buffer
	PrintFig10(&buf, rows)
	if !strings.Contains(buf.String(), "No Augmentation") {
		t.Fatal("bad printout")
	}
}

func TestAblationVariants(t *testing.T) {
	rows, err := Ablation(tiny())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 5 {
		t.Fatalf("expected 5 variants, got %d", len(rows))
	}
	names := map[string]bool{}
	for _, r := range rows {
		names[r.Variant] = true
		for _, v := range []float64{r.InDegMMD, r.ClusMMD, r.AttrJSD, r.SpearMAE} {
			if !finite(v) || v < 0 {
				t.Fatalf("bad ablation value in %s: %v", r.Variant, v)
			}
		}
	}
	if !names["VRDAG (full)"] || !names["w/o bi-flow"] {
		t.Fatalf("missing variants: %v", names)
	}
	var buf bytes.Buffer
	PrintAblation(&buf, rows)
	if !strings.Contains(buf.String(), "Variant") {
		t.Fatal("bad printout")
	}
}

func TestFigure9Sweep(t *testing.T) {
	rows, err := Figure9Sweep(Options{Scale: 0.01, Seed: 8, Epochs: 1})
	if err != nil {
		t.Fatal(err)
	}
	// 4 horizons × 4 methods
	if len(rows) != 16 {
		t.Fatalf("expected 16 rows, got %d", len(rows))
	}
	var buf bytes.Buffer
	PrintSweep(&buf, rows)
	if !strings.Contains(buf.String(), "Train(s)") {
		t.Fatal("bad printout")
	}
}

func TestParamAnalysis(t *testing.T) {
	rows, err := ParamAnalysis(Options{Scale: 0.01, Seed: 9, Epochs: 1})
	if err != nil {
		t.Fatal(err)
	}
	// 4 + 4 + 4 + 3 sweep points
	if len(rows) != 15 {
		t.Fatalf("expected 15 rows, got %d", len(rows))
	}
	params := map[string]int{}
	for _, r := range rows {
		params[r.Param]++
		if !finite(r.InDegMMD) || !finite(r.AttrJSD) || r.TrainSec <= 0 {
			t.Fatalf("bad row %+v", r)
		}
	}
	if params["dz"] != 4 || params["L"] != 3 {
		t.Fatalf("sweep coverage wrong: %v", params)
	}
	var buf bytes.Buffer
	PrintParams(&buf, rows)
	if !strings.Contains(buf.String(), "Param") {
		t.Fatal("bad printout")
	}
}
