package experiments

import (
	"fmt"
	"io"
	"time"

	"vrdag/internal/core"
	"vrdag/internal/datasets"
	"vrdag/internal/metrics"
)

// ParamRow is one configuration of the parameter analysis (Appendix A-F):
// quality and cost as a function of one swept hyper-parameter.
type ParamRow struct {
	Param    string // "dz", "dh", "K", "L"
	Value    int
	InDegMMD float64
	ClusMMD  float64
	AttrJSD  float64
	TrainSec float64
	GenSec   float64
}

// ParamAnalysis reconstructs the paper's parameter study on the Email
// replica: sweep the latent size d_z, hidden size d_h, mixture size K and
// encoder depth L one at a time around the default configuration, and
// report generation quality and wall time for each point.
func ParamAnalysis(o Options) ([]ParamRow, error) {
	o = o.withDefaults()
	orig, _, err := datasets.Replica(datasets.Email, o.Scale, o.Seed)
	if err != nil {
		return nil, err
	}
	sweeps := []struct {
		name   string
		values []int
		apply  func(*core.Config, int)
	}{
		{"dz", []int{2, 4, 8, 16}, func(c *core.Config, v int) { c.LatentDim = v }},
		{"dh", []int{4, 8, 16, 32}, func(c *core.Config, v int) { c.HiddenDim = v }},
		{"K", []int{1, 2, 4, 8}, func(c *core.Config, v int) { c.K = v }},
		{"L", []int{1, 2, 3}, func(c *core.Config, v int) { c.EncoderLayers = v }},
	}
	var rows []ParamRow
	for _, sw := range sweeps {
		for _, v := range sw.values {
			cfg := core.DefaultConfig(orig.N, orig.F)
			cfg.Epochs = o.Epochs
			cfg.Seed = o.Seed
			if orig.N <= 256 {
				cfg.CandidateCap = 0
			}
			sw.apply(&cfg, v)
			m := core.New(cfg)
			start := time.Now()
			if _, err := m.Fit(orig); err != nil {
				return nil, fmt.Errorf("param %s=%d: %w", sw.name, v, err)
			}
			trainSec := time.Since(start).Seconds()
			start = time.Now()
			synth, err := m.Generate(orig.T())
			if err != nil {
				return nil, fmt.Errorf("param %s=%d: %w", sw.name, v, err)
			}
			genSec := time.Since(start).Seconds()
			rep := metrics.CompareStructure(orig, synth)
			rows = append(rows, ParamRow{
				Param: sw.name, Value: v,
				InDegMMD: rep.InDegMMD, ClusMMD: rep.ClusMMD,
				AttrJSD:  metrics.AttrJSD(orig, synth, 32),
				TrainSec: trainSec, GenSec: genSec,
			})
		}
	}
	return rows, nil
}

// PrintParams renders the parameter-analysis rows.
func PrintParams(w io.Writer, rows []ParamRow) {
	fmt.Fprintf(w, "%-6s %6s %9s %9s %9s %10s %10s\n",
		"Param", "Value", "In-deg", "Clus", "AttrJSD", "Train(s)", "Gen(s)")
	for _, r := range rows {
		fmt.Fprintf(w, "%-6s %6d %9.4f %9.4f %9.4f %10.4f %10.4f\n",
			r.Param, r.Value, r.InDegMMD, r.ClusMMD, r.AttrJSD, r.TrainSec, r.GenSec)
	}
}
