// Package experiments reproduces every table and figure of the paper's
// evaluation section on the seeded dataset replicas:
//
//	Table I    — 8 structure metrics × datasets × generators
//	Table II   — Spearman-correlation MAE of attributes
//	Fig. 3     — attribute JSD / EMD (VRDAG vs GenCAT vs Normal)
//	Figs. 4-6  — temporal structure differences (degree/clustering/coreness)
//	Figs. 7-8  — temporal attribute differences (MAE/RMSE)
//	Fig. 9     — training/generation wall time (+ timestep sweep)
//	Tables III/IV — scalability against temporal edge count
//	Fig. 10    — downstream augmentation case study
//	Ablations  — bi-flow, mixture size, SCE, Time2Vec (Appendix A-E)
//
// Each runner returns structured results and can render the same rows the
// paper reports. Scale < 1 shrinks the replicas so the full suite runs on
// a laptop; the shapes (who wins, by roughly what factor) are preserved.
package experiments

import (
	"fmt"
	"io"
	"time"

	"vrdag/internal/baselines"
	"vrdag/internal/baselines/dymond"
	"vrdag/internal/baselines/gencat"
	"vrdag/internal/baselines/gran"
	"vrdag/internal/baselines/normalattr"
	"vrdag/internal/baselines/taggen"
	"vrdag/internal/baselines/tggan"
	"vrdag/internal/baselines/tigger"
	"vrdag/internal/core"
	"vrdag/internal/datasets"
	"vrdag/internal/downstream"
	"vrdag/internal/dyngraph"
	"vrdag/internal/metrics"
	"vrdag/internal/textplot"
)

// Options configures an experiment run.
type Options struct {
	Scale  float64 // dataset scale factor (1 = Table-I sizes; default 0.05)
	Seed   int64
	Epochs int // VRDAG training epochs (default 10 at small scale)
}

func (o Options) withDefaults() Options {
	if o.Scale == 0 {
		o.Scale = 0.05
	}
	if o.Epochs == 0 {
		o.Epochs = 10
	}
	return o
}

// vrdagFor builds and trains a VRDAG model for a replica.
func vrdagFor(g *dyngraph.Sequence, o Options) (*core.Model, error) {
	cfg := core.DefaultConfig(g.N, g.F)
	cfg.Epochs = o.Epochs
	cfg.Seed = o.Seed
	if g.N <= 256 {
		cfg.CandidateCap = 0 // exact decoding on small replicas
	}
	m := core.New(cfg)
	if _, err := m.Fit(g); err != nil {
		return nil, err
	}
	return m, nil
}

// vrdagGenerator adapts core.Model to the baselines.Generator interface so
// the harness can treat every method uniformly.
type vrdagGenerator struct {
	o Options
	m *core.Model
}

func (v *vrdagGenerator) Name() string { return "VRDAG" }

func (v *vrdagGenerator) Fit(g *dyngraph.Sequence) error {
	m, err := vrdagFor(g, v.o)
	if err != nil {
		return err
	}
	v.m = m
	return nil
}

func (v *vrdagGenerator) Generate(t int) (*dyngraph.Sequence, error) {
	if v.m == nil {
		return nil, fmt.Errorf("experiments: VRDAG Generate before Fit")
	}
	return v.m.Generate(t)
}

// NewVRDAG returns the paper's model wrapped as a Generator.
func NewVRDAG(o Options) baselines.Generator { return &vrdagGenerator{o: o.withDefaults()} }

// structureGenerators returns the Table-I comparison set. Dymond is
// included only for the Email dataset, as in the paper.
func structureGenerators(dataset string, o Options) []baselines.Generator {
	gens := []baselines.Generator{
		gran.New(gran.Config{Seed: o.Seed + 1}),
		gencat.New(gencat.Config{Seed: o.Seed + 2}),
		taggen.New(taggen.Config{Seed: o.Seed + 3}),
	}
	if dataset == datasets.Email {
		gens = append(gens, dymond.New(dymond.Config{Seed: o.Seed + 4}))
	}
	gens = append(gens,
		tggan.New(tggan.Config{Seed: o.Seed + 5}),
		tigger.New(tigger.Config{Seed: o.Seed + 6}),
		NewVRDAG(o),
	)
	return gens
}

// Table1Row is one generator's row of Table I.
type Table1Row struct {
	Dataset string
	Method  string
	Report  metrics.StructureReport
	Err     error // set when a generator cannot run (e.g. Dymond at scale)
}

// Table1 reproduces the structure-generation comparison for one dataset.
func Table1(dataset string, o Options) ([]Table1Row, error) {
	o = o.withDefaults()
	orig, _, err := datasets.Replica(dataset, o.Scale, o.Seed)
	if err != nil {
		return nil, err
	}
	var rows []Table1Row
	for _, gen := range structureGenerators(dataset, o) {
		row := Table1Row{Dataset: dataset, Method: gen.Name()}
		if err := gen.Fit(orig); err != nil {
			row.Err = err
			rows = append(rows, row)
			continue
		}
		synth, err := gen.Generate(orig.T())
		if err != nil {
			row.Err = err
			rows = append(rows, row)
			continue
		}
		row.Report = metrics.CompareStructure(orig, synth)
		rows = append(rows, row)
	}
	return rows, nil
}

// Table2Row is one dataset×method entry of Table II.
type Table2Row struct {
	Dataset string
	Method  string
	MAE     float64
}

// attributeGenerators returns the Fig. 3 / Table II comparison set.
func attributeGenerators(o Options) []baselines.Generator {
	return []baselines.Generator{
		normalattr.New(normalattr.Config{Seed: o.Seed + 11}),
		gencat.New(gencat.Config{Seed: o.Seed + 12}),
		NewVRDAG(o),
	}
}

// Table2 reproduces the Spearman-correlation MAE comparison on the two
// multi-attribute datasets (Email, Guarantee).
func Table2(o Options) ([]Table2Row, error) {
	o = o.withDefaults()
	var rows []Table2Row
	for _, ds := range []string{datasets.Email, datasets.Guarantee} {
		orig, _, err := datasets.Replica(ds, o.Scale, o.Seed)
		if err != nil {
			return nil, err
		}
		realRows := metrics.AttributeRows(orig)
		for _, gen := range attributeGenerators(o) {
			if err := gen.Fit(orig); err != nil {
				return nil, fmt.Errorf("table2 %s/%s: %w", ds, gen.Name(), err)
			}
			synth, err := gen.Generate(orig.T())
			if err != nil {
				return nil, fmt.Errorf("table2 %s/%s: %w", ds, gen.Name(), err)
			}
			rows = append(rows, Table2Row{
				Dataset: ds, Method: gen.Name(),
				MAE: metrics.SpearmanMAE(realRows, metrics.AttributeRows(synth)),
			})
		}
	}
	return rows, nil
}

// Fig3Row is one dataset×method attribute-distribution entry.
type Fig3Row struct {
	Dataset string
	Method  string
	JSD     float64
	EMD     float64
}

// Figure3 reproduces the attribute JSD/EMD comparison on all six datasets.
func Figure3(o Options) ([]Fig3Row, error) {
	o = o.withDefaults()
	var rows []Fig3Row
	for _, ds := range datasets.AllNames() {
		orig, _, err := datasets.Replica(ds, o.Scale, o.Seed)
		if err != nil {
			return nil, err
		}
		for _, gen := range attributeGenerators(o) {
			if err := gen.Fit(orig); err != nil {
				return nil, fmt.Errorf("fig3 %s/%s: %w", ds, gen.Name(), err)
			}
			synth, err := gen.Generate(orig.T())
			if err != nil {
				return nil, fmt.Errorf("fig3 %s/%s: %w", ds, gen.Name(), err)
			}
			rows = append(rows, Fig3Row{
				Dataset: ds, Method: gen.Name(),
				JSD: metrics.AttrJSD(orig, synth, 32),
				EMD: metrics.AttrEMD(orig, synth),
			})
		}
	}
	return rows, nil
}

// DiffSeries is one line of Figs. 4-8: a per-timestep difference series.
type DiffSeries struct {
	Dataset string
	Line    string // "Original", "VRDAG", "TIGGER"
	Metric  string // "degree", "clustering", "coreness", "mae", "rmse"
	Values  []float64
}

// Figures4to6 reproduces the temporal structure-difference plots on the
// paper's three representative datasets (Email, Wiki, GDELT).
func Figures4to6(o Options) ([]DiffSeries, error) {
	o = o.withDefaults()
	props := map[string]func(*dyngraph.Snapshot) []float64{
		"degree":     metrics.TotalDegrees,
		"clustering": metrics.ClusteringCoefficients,
		"coreness":   metrics.Coreness,
	}
	var out []DiffSeries
	for _, ds := range []string{datasets.Email, datasets.Wiki, datasets.GDELT} {
		orig, _, err := datasets.Replica(ds, o.Scale, o.Seed)
		if err != nil {
			return nil, err
		}
		vg := NewVRDAG(o)
		if err := vg.Fit(orig); err != nil {
			return nil, err
		}
		vSynth, err := vg.Generate(orig.T())
		if err != nil {
			return nil, err
		}
		tg := tigger.New(tigger.Config{Seed: o.Seed + 21})
		if err := tg.Fit(orig); err != nil {
			return nil, err
		}
		tSynth, err := tg.Generate(orig.T())
		if err != nil {
			return nil, err
		}
		for name, prop := range props {
			out = append(out,
				DiffSeries{ds, "Original", name, metrics.DifferenceSeries(orig, prop)},
				DiffSeries{ds, "VRDAG", name, metrics.DifferenceSeries(vSynth, prop)},
				DiffSeries{ds, "TIGGER", name, metrics.DifferenceSeries(tSynth, prop)},
			)
		}
	}
	return out, nil
}

// Figures7to8 reproduces the temporal attribute-difference plots
// (Original vs VRDAG only; no attribute-capable dynamic baseline exists).
func Figures7to8(o Options) ([]DiffSeries, error) {
	o = o.withDefaults()
	var out []DiffSeries
	for _, ds := range []string{datasets.Email, datasets.Wiki, datasets.GDELT} {
		orig, _, err := datasets.Replica(ds, o.Scale, o.Seed)
		if err != nil {
			return nil, err
		}
		vg := NewVRDAG(o)
		if err := vg.Fit(orig); err != nil {
			return nil, err
		}
		synth, err := vg.Generate(orig.T())
		if err != nil {
			return nil, err
		}
		oMAE, oRMSE := metrics.AttrDifferenceSeries(orig)
		vMAE, vRMSE := metrics.AttrDifferenceSeries(synth)
		out = append(out,
			DiffSeries{ds, "Original", "mae", oMAE},
			DiffSeries{ds, "VRDAG", "mae", vMAE},
			DiffSeries{ds, "Original", "rmse", oRMSE},
			DiffSeries{ds, "VRDAG", "rmse", vRMSE},
		)
	}
	return out, nil
}

// TimingRow is one dataset×method wall-time measurement (Fig. 9a-b).
type TimingRow struct {
	Dataset  string
	Method   string
	TrainSec float64
	GenSec   float64
	Err      error
}

// efficiencyGenerators returns the Fig. 9 comparison set.
func efficiencyGenerators(o Options) []baselines.Generator {
	return []baselines.Generator{
		NewVRDAG(o),
		tigger.New(tigger.Config{Seed: o.Seed + 31}),
		tggan.New(tggan.Config{Seed: o.Seed + 32}),
		taggen.New(taggen.Config{Seed: o.Seed + 33}),
	}
}

// Figure9 measures training and generation wall time on every dataset.
func Figure9(o Options) ([]TimingRow, error) {
	o = o.withDefaults()
	var rows []TimingRow
	for _, ds := range datasets.AllNames() {
		orig, _, err := datasets.Replica(ds, o.Scale, o.Seed)
		if err != nil {
			return nil, err
		}
		for _, gen := range efficiencyGenerators(o) {
			rows = append(rows, timeOne(ds, gen, orig, orig.T()))
		}
	}
	return rows, nil
}

func timeOne(ds string, gen baselines.Generator, orig *dyngraph.Sequence, t int) TimingRow {
	row := TimingRow{Dataset: ds, Method: gen.Name()}
	start := time.Now()
	if err := gen.Fit(orig); err != nil {
		row.Err = err
		return row
	}
	row.TrainSec = time.Since(start).Seconds()
	start = time.Now()
	if _, err := gen.Generate(t); err != nil {
		row.Err = err
		return row
	}
	row.GenSec = time.Since(start).Seconds()
	return row
}

// SweepRow is one point of the Fig. 9(c-d) timestep sweep on Bitcoin.
type SweepRow struct {
	Method   string
	T        int
	TrainSec float64
	GenSec   float64
}

// Figure9Sweep measures running time against the number of timesteps on
// the Bitcoin replica (T ∈ {5, 15, 25, 35}).
func Figure9Sweep(o Options) ([]SweepRow, error) {
	o = o.withDefaults()
	var rows []SweepRow
	for _, tt := range []int{5, 15, 25, 35} {
		full, _, err := datasets.Replica(datasets.Bitcoin, o.Scale, o.Seed)
		if err != nil {
			return nil, err
		}
		// Truncate the replica to tt snapshots.
		orig := &dyngraph.Sequence{N: full.N, F: full.F, Snapshots: full.Snapshots[:tt]}
		for _, gen := range efficiencyGenerators(o) {
			r := timeOne(datasets.Bitcoin, gen, orig, tt)
			if r.Err != nil {
				return nil, fmt.Errorf("fig9sweep %s T=%d: %w", r.Method, tt, r.Err)
			}
			rows = append(rows, SweepRow{Method: r.Method, T: tt, TrainSec: r.TrainSec, GenSec: r.GenSec})
		}
	}
	return rows, nil
}

// ScaleRow is one point of Tables III/IV: wall time against temporal edge
// count on GDELT-like workloads.
type ScaleRow struct {
	Method   string
	Edges    int // approximate temporal edge count of the workload
	TrainSec float64
	GenSec   float64
}

// Scalability reproduces Tables III and IV: running time against the
// number of temporal edges sampled from the GDELT replica. edgeTargets
// defaults to {1k, 10k} at small scale; pass the paper's {1e3, 1e4, 1e5,
// 5e5} for the full experiment.
func Scalability(o Options, edgeTargets []int) ([]ScaleRow, error) {
	o = o.withDefaults()
	if len(edgeTargets) == 0 {
		edgeTargets = []int{1000, 10000}
	}
	// Full-size GDELT replica carries ≈566k temporal edges; scale linearly.
	const fullEdges = 566735.0
	var rows []ScaleRow
	for _, target := range edgeTargets {
		scale := float64(target) / fullEdges
		orig, _, err := datasets.Replica(datasets.GDELT, scale, o.Seed)
		if err != nil {
			return nil, err
		}
		m := orig.TotalTemporalEdges()
		for _, gen := range efficiencyGenerators(o) {
			r := timeOne(datasets.GDELT, gen, orig, orig.T())
			if r.Err != nil {
				return nil, fmt.Errorf("scalability %s M=%d: %w", r.Method, m, r.Err)
			}
			rows = append(rows, ScaleRow{Method: r.Method, Edges: m, TrainSec: r.TrainSec, GenSec: r.GenSec})
		}
	}
	return rows, nil
}

// Fig10Row is one dataset×method downstream result.
type Fig10Row struct {
	Dataset  string
	Method   string // "No Augmentation", "VRDAG", "GenCAT"
	LinkF1   float64
	AttrRMSE float64
}

// Figure10 reproduces the augmentation case study on Email, Wiki, GDELT:
// CoEvoGNN trained without augmentation, with VRDAG synthetic data, and
// with GenCAT synthetic data.
func Figure10(o Options) ([]Fig10Row, error) {
	o = o.withDefaults()
	var rows []Fig10Row
	for _, ds := range []string{datasets.Email, datasets.Wiki, datasets.GDELT} {
		orig, _, err := datasets.Replica(ds, o.Scale, o.Seed)
		if err != nil {
			return nil, err
		}
		dcfg := downstream.Config{Epochs: 20, Seed: o.Seed + 41}

		vg := NewVRDAG(o)
		if err := vg.Fit(orig); err != nil {
			return nil, err
		}
		vSynth, err := vg.Generate(orig.T())
		if err != nil {
			return nil, err
		}
		base, vAug, err := downstream.RunCaseStudy(orig, vSynth, dcfg)
		if err != nil {
			return nil, err
		}

		gc := gencat.New(gencat.Config{Seed: o.Seed + 42})
		if err := gc.Fit(orig); err != nil {
			return nil, err
		}
		gSynth, err := gc.Generate(orig.T())
		if err != nil {
			return nil, err
		}
		_, gAug, err := downstream.RunCaseStudy(orig, gSynth, dcfg)
		if err != nil {
			return nil, err
		}

		rows = append(rows,
			Fig10Row{ds, "No Augmentation", base.LinkF1, base.AttrRMSE},
			Fig10Row{ds, "VRDAG", vAug.LinkF1, vAug.AttrRMSE},
			Fig10Row{ds, "GenCAT", gAug.LinkF1, gAug.AttrRMSE},
		)
	}
	return rows, nil
}

// AblationRow is one model-variant result on the Email replica.
type AblationRow struct {
	Variant  string
	InDegMMD float64
	ClusMMD  float64
	AttrJSD  float64
	SpearMAE float64
}

// Ablation reconstructs the Appendix A-E study: each row disables one
// design choice of VRDAG (bi-flow encoder, mixture size K, SCE loss,
// Time2Vec) on the Email replica.
func Ablation(o Options) ([]AblationRow, error) {
	o = o.withDefaults()
	orig, _, err := datasets.Replica(datasets.Email, o.Scale, o.Seed)
	if err != nil {
		return nil, err
	}
	variants := []struct {
		name   string
		mutate func(*core.Config)
	}{
		{"VRDAG (full)", func(c *core.Config) {}},
		{"w/o bi-flow", func(c *core.Config) { c.BiFlow = false }},
		{"K=1", func(c *core.Config) { c.K = 1 }},
		{"MSE loss", func(c *core.Config) { c.UseSCE = false }},
		{"w/o Time2Vec", func(c *core.Config) { c.UseTime2Vec = false }},
	}
	realRows := metrics.AttributeRows(orig)
	var out []AblationRow
	for _, v := range variants {
		cfg := core.DefaultConfig(orig.N, orig.F)
		cfg.Epochs = o.Epochs
		cfg.Seed = o.Seed
		if orig.N <= 256 {
			cfg.CandidateCap = 0
		}
		v.mutate(&cfg)
		m := core.New(cfg)
		if _, err := m.Fit(orig); err != nil {
			return nil, fmt.Errorf("ablation %s: %w", v.name, err)
		}
		synth, err := m.Generate(orig.T())
		if err != nil {
			return nil, fmt.Errorf("ablation %s: %w", v.name, err)
		}
		rep := metrics.CompareStructure(orig, synth)
		out = append(out, AblationRow{
			Variant:  v.name,
			InDegMMD: rep.InDegMMD,
			ClusMMD:  rep.ClusMMD,
			AttrJSD:  metrics.AttrJSD(orig, synth, 32),
			SpearMAE: metrics.SpearmanMAE(realRows, metrics.AttributeRows(synth)),
		})
	}
	return out, nil
}

// ---- Rendering ----

// PrintTable1 renders Table-I rows in the paper's column order.
func PrintTable1(w io.Writer, rows []Table1Row) {
	fmt.Fprintf(w, "%-10s %-8s %9s %9s %9s %8s %8s %8s %8s %8s\n",
		"Dataset", "Method", "In-deg", "Out-deg", "Clus", "In-PLE", "Out-PLE", "Wedge", "NC", "LCC")
	for _, r := range rows {
		if r.Err != nil {
			fmt.Fprintf(w, "%-10s %-8s  (not run: %v)\n", r.Dataset, r.Method, r.Err)
			continue
		}
		p := r.Report
		fmt.Fprintf(w, "%-10s %-8s %9.4f %9.4f %9.4f %8.4f %8.4f %8.4f %8.4f %8.4f\n",
			r.Dataset, r.Method, p.InDegMMD, p.OutDegMMD, p.ClusMMD,
			p.InPLE, p.OutPLE, p.Wedge, p.NC, p.LCC)
	}
}

// PrintTable2 renders the Spearman MAE table.
func PrintTable2(w io.Writer, rows []Table2Row) {
	fmt.Fprintf(w, "%-10s %-8s %10s\n", "Dataset", "Method", "SpearMAE")
	for _, r := range rows {
		fmt.Fprintf(w, "%-10s %-8s %10.4f\n", r.Dataset, r.Method, r.MAE)
	}
}

// PrintFig3 renders the attribute-distribution figure data.
func PrintFig3(w io.Writer, rows []Fig3Row) {
	fmt.Fprintf(w, "%-10s %-8s %8s %8s\n", "Dataset", "Method", "JSD", "EMD")
	for _, r := range rows {
		fmt.Fprintf(w, "%-10s %-8s %8.4f %8.4f\n", r.Dataset, r.Method, r.JSD, r.EMD)
	}
}

// PrintSeries renders difference-series lines, appending a sparkline so
// the temporal shape is visible without plotting.
func PrintSeries(w io.Writer, series []DiffSeries) {
	for _, s := range series {
		fmt.Fprintf(w, "%-10s %-10s %-10s %s |", s.Dataset, s.Metric, s.Line, textplot.Spark(s.Values))
		for _, v := range s.Values {
			fmt.Fprintf(w, " %6.4f", v)
		}
		fmt.Fprintln(w)
	}
}

// PrintTimings renders Fig. 9(a-b) rows.
func PrintTimings(w io.Writer, rows []TimingRow) {
	fmt.Fprintf(w, "%-10s %-8s %12s %12s\n", "Dataset", "Method", "Train(s)", "Generate(s)")
	for _, r := range rows {
		if r.Err != nil {
			fmt.Fprintf(w, "%-10s %-8s  (not run: %v)\n", r.Dataset, r.Method, r.Err)
			continue
		}
		fmt.Fprintf(w, "%-10s %-8s %12.4f %12.4f\n", r.Dataset, r.Method, r.TrainSec, r.GenSec)
	}
}

// PrintSweep renders Fig. 9(c-d) rows.
func PrintSweep(w io.Writer, rows []SweepRow) {
	fmt.Fprintf(w, "%-8s %4s %12s %12s\n", "Method", "T", "Train(s)", "Generate(s)")
	for _, r := range rows {
		fmt.Fprintf(w, "%-8s %4d %12.4f %12.4f\n", r.Method, r.T, r.TrainSec, r.GenSec)
	}
}

// PrintScale renders Tables III/IV rows.
func PrintScale(w io.Writer, rows []ScaleRow) {
	fmt.Fprintf(w, "%-8s %9s %12s %12s\n", "Method", "#Edges", "Train(s)", "Generate(s)")
	for _, r := range rows {
		fmt.Fprintf(w, "%-8s %9d %12.4f %12.4f\n", r.Method, r.Edges, r.TrainSec, r.GenSec)
	}
}

// PrintFig10 renders the case-study rows.
func PrintFig10(w io.Writer, rows []Fig10Row) {
	fmt.Fprintf(w, "%-10s %-16s %8s %9s\n", "Dataset", "Method", "LinkF1", "AttrRMSE")
	for _, r := range rows {
		fmt.Fprintf(w, "%-10s %-16s %8.4f %9.4f\n", r.Dataset, r.Method, r.LinkF1, r.AttrRMSE)
	}
}

// PrintAblation renders the ablation rows.
func PrintAblation(w io.Writer, rows []AblationRow) {
	fmt.Fprintf(w, "%-14s %9s %9s %9s %9s\n", "Variant", "In-deg", "Clus", "AttrJSD", "SpearMAE")
	for _, r := range rows {
		fmt.Fprintf(w, "%-14s %9.4f %9.4f %9.4f %9.4f\n",
			r.Variant, r.InDegMMD, r.ClusMMD, r.AttrJSD, r.SpearMAE)
	}
}
